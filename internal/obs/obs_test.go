package obs_test

import (
	"strings"
	"testing"

	"dsisim/internal/cache"
	"dsisim/internal/core"
	"dsisim/internal/cpu"
	"dsisim/internal/event"
	"dsisim/internal/machine"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/obs"
	"dsisim/internal/proto"
)

// prog is an inline test program.
type prog struct {
	name   string
	setup  func(m *machine.Machine)
	kernel func(p *cpu.Proc)
}

func (p *prog) Name() string { return p.name }
func (p *prog) Setup(m *machine.Machine) {
	if p.setup != nil {
		p.setup(m)
	}
}
func (p *prog) Kernel(pr *cpu.Proc) { p.kernel(pr) }
func (p *prog) WarmupBarriers() int { return 0 }

// microConfig is a 2-processor versions-DSI machine with a sink attached.
func microConfig(s *obs.Sink) machine.Config {
	return machine.Config{
		Processors:  2,
		CacheBytes:  64 * mem.BlockSize,
		CacheAssoc:  4,
		Consistency: proto.SC,
		Policy:      core.Policy{Identifier: core.Versions{}, UpgradeExemption: true},
		Sink:        s,
	}
}

// pingPong is a tiny producer-consumer workload: proc 0 writes two blocks,
// both barrier, proc 1 reads them back, both barrier again.
func pingPong() machine.Program {
	var r mem.Region
	return &prog{
		name: "pingpong",
		setup: func(m *machine.Machine) {
			r = m.Layout().AllocBlocked("data", 2*mem.BlockSize)
		},
		kernel: func(p *cpu.Proc) {
			if p.ID() == 0 {
				p.WriteWord(r.Addr(0), 7)
				p.WriteWord(r.Addr(mem.BlockSize), 9)
			}
			p.Barrier()
			if p.ID() == 1 {
				p.Assert(p.Read(r.Addr(0)).Word == 7, "bad word")
				p.Read(r.Addr(mem.BlockSize))
			}
			p.Barrier()
		},
	}
}

func TestNilSinkIsSafe(t *testing.T) {
	var s *obs.Sink
	s.Reset()
	s.MsgSent(1, netsim.Message{}, 2)
	s.MsgDelivered(2, netsim.Message{})
	s.OnCacheState(1, 0, 0, 0, cache.Invalid, cache.Shared, 0)
	s.OnDirState(1, 0, 0, 0, 0, 0)
	s.OnSelfInval(1, 0, 0, cache.Shared, false, false)
	s.OnTearOffGrant(1, 0, 0, 0, 1)
	s.OnTxnStart(1, 0, 0, 1, 1, netsim.GetS)
	s.OnTxnEnd(1, 0, 0, 1, 1)
	s.ForEach(func(*obs.Event) { t.Fatal("nil sink has events") })
	if s.Len() != 0 || s.Total() != 0 || s.Dropped() != 0 || s.Nodes() != 0 {
		t.Fatal("nil sink reports non-zero sizes")
	}
	if s.Events() != nil {
		t.Fatal("nil sink returns events")
	}
	if s.Metrics() != nil {
		t.Fatal("nil sink returns metrics")
	}
	if n, err := s.WriteText(&strings.Builder{}, obs.NewFilter(), 0); n != 0 || err != nil {
		t.Fatalf("nil sink WriteText = %d, %v", n, err)
	}
}

func TestMicroRunRecordsCoherentStream(t *testing.T) {
	s := obs.NewSink(obs.Config{})
	res := machine.New(microConfig(s)).Run(pingPong())
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Errors[0])
	}
	if s.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if s.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", s.Nodes())
	}
	if res.Blocks == nil {
		t.Fatal("Result.Blocks not populated")
	}

	// Every send must have a matching delivery, in order, per (src, dst).
	type pair struct{ src, dst int32 }
	pending := map[pair][]netsim.Kind{}
	counts := map[obs.Kind]int{}
	txnStarts, txnEnds := 0, 0
	s.ForEach(func(e *obs.Event) {
		counts[e.Kind]++
		switch e.Kind {
		case obs.MsgSend:
			p := pair{e.Node, e.Peer}
			pending[p] = append(pending[p], e.Msg)
		case obs.MsgRecv:
			p := pair{e.Peer, e.Node}
			q := pending[p]
			if len(q) == 0 {
				t.Fatalf("delivery without send: %s", e)
			}
			if q[0] != e.Msg {
				t.Fatalf("out-of-order delivery: got %s, want %s", e.Msg, q[0])
			}
			pending[p] = q[1:]
		case obs.TxnStart:
			txnStarts++
		case obs.TxnEnd:
			txnEnds++
		}
	})
	for p, q := range pending {
		if len(q) != 0 {
			t.Fatalf("%d sends %d->%d never delivered", len(q), p.src, p.dst)
		}
	}
	if txnStarts != txnEnds {
		t.Fatalf("txn starts %d != ends %d", txnStarts, txnEnds)
	}
	m := s.Metrics()
	if m.Transactions != int64(txnStarts) {
		t.Fatalf("metrics transactions %d != stream %d", m.Transactions, txnStarts)
	}
	if counts[obs.MsgSend] == 0 || counts[obs.CacheState] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}

	// The requester's miss and its grant share a transaction id.
	var missTxn uint64
	s.ForEach(func(e *obs.Event) {
		if missTxn == 0 && e.Kind == obs.MsgSend && e.Msg == netsim.GetX {
			missTxn = e.Txn
		}
	})
	if missTxn == 0 {
		t.Fatal("GetX without transaction id")
	}
	granted := false
	s.ForEach(func(e *obs.Event) {
		if e.Txn == missTxn && e.Kind == obs.MsgSend && (e.Msg == netsim.DataX || e.Msg == netsim.AckX) {
			granted = true
		}
	})
	if !granted {
		t.Fatalf("no grant tagged with txn %d", missTxn)
	}
}

func TestDeterminismWithAndWithoutSink(t *testing.T) {
	bare := machine.New(microConfig(nil)).Run(pingPong())
	s := obs.NewSink(obs.Config{})
	obsd := machine.New(microConfig(s)).Run(pingPong())
	if bare.Failed() || obsd.Failed() {
		t.Fatal("run failed")
	}
	if bare.TotalTime != obsd.TotalTime {
		t.Fatalf("sink changed timing: %d != %d", bare.TotalTime, obsd.TotalTime)
	}
	if bare.Messages != obsd.Messages {
		t.Fatalf("sink changed traffic: %+v != %+v", bare.Messages, obsd.Messages)
	}
}

func TestMaxEventsCap(t *testing.T) {
	s := obs.NewSink(obs.Config{MaxEvents: 10})
	res := machine.New(microConfig(s)).Run(pingPong())
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Errors[0])
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if s.Dropped() == 0 {
		t.Fatal("nothing dropped despite cap")
	}
	if s.Total() != uint64(s.Len())+s.Dropped() {
		t.Fatalf("total %d != len %d + dropped %d", s.Total(), s.Len(), s.Dropped())
	}
	// Metrics stream past the cap: they must match an uncapped run.
	u := obs.NewSink(obs.Config{})
	machine.New(microConfig(u)).Run(pingPong())
	if s.Metrics().Transactions != u.Metrics().Transactions {
		t.Fatalf("capped metrics diverge: %d != %d",
			s.Metrics().Transactions, u.Metrics().Transactions)
	}
}

func TestResetReusesChunks(t *testing.T) {
	s := obs.NewSink(obs.Config{})
	machine.New(microConfig(s)).Run(pingPong())
	n := s.Len()
	if n == 0 {
		t.Fatal("no events")
	}
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("reset did not empty the sink")
	}
	machine.New(microConfig(s)).Run(pingPong())
	if s.Len() != n {
		t.Fatalf("second run recorded %d events, want %d", s.Len(), n)
	}
}

func TestFilterAndWriteText(t *testing.T) {
	s := obs.NewSink(obs.Config{})
	machine.New(microConfig(s)).Run(pingPong())

	all, err := s.WriteText(&strings.Builder{}, obs.NewFilter(), 0)
	if err != nil || all != s.Len() {
		t.Fatalf("unfiltered matched %d of %d (%v)", all, s.Len(), err)
	}

	f := obs.NewFilter().WithKind(obs.MsgSend)
	var b strings.Builder
	sends, err := s.WriteText(&b, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sends == 0 || sends >= all {
		t.Fatalf("kind filter matched %d of %d", sends, all)
	}
	if got := strings.Count(b.String(), "\n"); got != 6 { // 5 events + "more" line
		t.Fatalf("limit printed %d lines:\n%s", got, b.String())
	}
	if !strings.Contains(b.String(), "more events matched") {
		t.Fatal("missing truncation notice")
	}

	node0 := obs.Filter{Node: 0}
	m0, _ := s.WriteText(&strings.Builder{}, node0, 0)
	if m0 == 0 || m0 >= all {
		t.Fatalf("node filter matched %d of %d", m0, all)
	}
}

// TestPrematureAndEchoLossCounters drives the metric edges with a synthetic
// stream: an install that carried a version, a self-invalidation, then a
// re-miss inside the window whose request lost the version echo.
func TestPrematureAndEchoLossCounters(t *testing.T) {
	s := obs.NewSink(obs.Config{PrematureWindow: 400})
	b := mem.Addr(0x1000)
	miss := netsim.Message{Kind: netsim.GetS, Src: 1, Dst: 0, Addr: b}

	s.OnCacheState(100, 1, b, 1, cache.Invalid, cache.Shared, obs.FlagHasVer)
	s.OnSelfInval(200, 1, b, cache.Shared, false, false)
	s.MsgSent(300, miss, 400) // within window, no version echo

	m := s.Metrics()
	if m.SelfInvals != 1 {
		t.Fatalf("SelfInvals = %d", m.SelfInvals)
	}
	if m.PrematureSelfInvals != 1 {
		t.Fatalf("PrematureSelfInvals = %d, want 1", m.PrematureSelfInvals)
	}
	if m.EchoLosses != 1 {
		t.Fatalf("EchoLosses = %d, want 1", m.EchoLosses)
	}

	// A second miss must not double-count the same self-invalidation.
	s.MsgSent(350, miss, 450)
	if m = s.Metrics(); m.PrematureSelfInvals != 1 {
		t.Fatalf("PrematureSelfInvals double-counted: %d", m.PrematureSelfInvals)
	}

	// Outside the window: not premature. With a version echo: no loss.
	s.OnCacheState(500, 1, b, 2, cache.Invalid, cache.Shared, obs.FlagHasVer)
	s.OnSelfInval(600, 1, b, cache.Shared, false, false)
	echoed := miss
	echoed.HasVer = true
	s.MsgSent(1200, echoed, 1300)
	if m = s.Metrics(); m.PrematureSelfInvals != 1 || m.EchoLosses != 1 {
		t.Fatalf("late echoed miss miscounted: premature=%d echo=%d",
			m.PrematureSelfInvals, m.EchoLosses)
	}
}

// TestFIFODisplacementCounting checks the FIFO-displacement path: a machine
// with a tiny self-invalidation FIFO must displace early and the sink must
// classify those as FIFODisplace, not SelfInval.
func TestFIFODisplacementCounting(t *testing.T) {
	s := obs.NewSink(obs.Config{})
	cfg := microConfig(s)
	cfg.Policy = core.Policy{
		Identifier:   core.Versions{},
		NewMechanism: func() core.Mechanism { return core.NewFIFO(2) },
	}
	var r mem.Region
	res := machine.New(cfg).Run(&prog{
		name: "fifofill",
		setup: func(m *machine.Machine) {
			r = m.Layout().AllocBlocked("data", 16*mem.BlockSize)
		},
		kernel: func(p *cpu.Proc) {
			// Several write/read rounds: the version identifier needs an
			// invalidation round-trip before it marks reads self-invalidating,
			// and only marked blocks enter (and overflow) the FIFO.
			for round := 0; round < 4; round++ {
				if p.ID() == 0 {
					for i := uint64(0); i < 16; i++ {
						p.WriteWord(r.Addr(i*mem.BlockSize), i)
					}
				}
				p.Barrier()
				if p.ID() == 1 {
					for i := uint64(0); i < 16; i++ {
						p.Read(r.Addr(i * mem.BlockSize))
					}
				}
				p.Barrier()
			}
		},
	})
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Errors[0])
	}
	m := s.Metrics()
	if m.FIFODisplacements == 0 {
		t.Fatal("tiny FIFO displaced nothing")
	}
	if m.FIFODisplacements != res.FIFODisplacements {
		t.Fatalf("sink counted %d displacements, machine %d",
			m.FIFODisplacements, res.FIFODisplacements)
	}
}

// TestEchoLossOnFrameRecycle reproduces the echo-loss mechanism with a real
// machine: a one-set cache forces frame recycling, which destroys the tag
// (and version) history a version echo needs.
func TestEchoLossOnFrameRecycle(t *testing.T) {
	s := obs.NewSink(obs.Config{})
	cfg := microConfig(s)
	cfg.CacheBytes = 2 * mem.BlockSize
	cfg.CacheAssoc = 2 // one set: reading 3+ blocks recycles frames
	var r mem.Region
	res := machine.New(cfg).Run(&prog{
		name: "recycle",
		setup: func(m *machine.Machine) {
			r = m.Layout().AllocBlocked("data", 8*mem.BlockSize)
		},
		kernel: func(p *cpu.Proc) {
			if p.ID() == 0 {
				for i := uint64(0); i < 8; i++ {
					p.WriteWord(r.Addr(i*mem.BlockSize), i)
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				// Two passes: the first installs versions, the second misses
				// on recycled frames whose versions are gone.
				for pass := 0; pass < 2; pass++ {
					for i := uint64(0); i < 8; i++ {
						p.Read(r.Addr(i * mem.BlockSize))
					}
				}
			}
			p.Barrier()
		},
	})
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Errors[0])
	}
	if s.Metrics().EchoLosses == 0 {
		t.Fatal("frame recycling produced no echo losses")
	}
}

func TestEventStringAndKindNames(t *testing.T) {
	e := obs.Event{Cycle: 42, Kind: obs.MsgSend, Node: 1, Peer: 0,
		Msg: netsim.GetS, Addr: 0x40, Txn: 7, Flags: obs.FlagHasVer}
	str := e.String()
	for _, want := range []string{"42", "node1", "GetS", "blk=0x40", "txn=7", "ver"} {
		if !strings.Contains(str, want) {
			t.Fatalf("event string %q missing %q", str, want)
		}
	}
	for k := obs.Kind(0); k < obs.NumKinds; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	var _ event.Time = obs.DefaultPrematureWindow // schema stability: type check
}
