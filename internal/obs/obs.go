// Package obs is the coherence-event observability layer: a structured sink
// the protocol engines (internal/proto), the network (internal/netsim), and
// the machine emit into, one event per protocol message, state transition,
// self-invalidation, FIFO displacement, and tear-off grant.
//
// The layer exists because end-of-run aggregates cannot explain *why* a run
// diverges from the paper: the paper's whole argument is about message-level
// behaviour — which invalidations, acknowledgments, and self-invalidations
// happen and when. A Sink records that behaviour as a flat event stream
// carrying (cycle, node, block, transaction id, old/new state), and derives
// per-block lifetime metrics from it on the fly:
//
//   - time-in-state histograms (how long copies live Shared or Exclusive),
//   - a premature-self-invalidation counter (self-invalidated blocks the
//     same node re-missed on within a configurable window — the Figure 5
//     FIFO pathology, measured directly),
//   - an echo-loss counter (version-number misses whose frame was recycled
//     before the version could be echoed — the versions-vs-states
//     divergence, measured directly),
//   - a transaction-latency histogram (directory busy-period durations).
//
// Exporters turn the stream into a Chrome trace_event JSON that opens in
// chrome://tracing or Perfetto (WriteChrome) or a filtered plain-text
// listing (WriteText). docs/OBSERVABILITY.md documents the schema and its
// stability guarantees.
//
// # Zero overhead when disabled
//
// Every emission helper is safe on a nil *Sink and returns immediately, and
// the hot call sites in proto additionally branch on the nil check before
// computing event fields, so a machine built without a sink runs the exact
// allocation-free steady state PR 1 established (BenchmarkRunOne allocs/op
// is pinned by TestNilSinkAllocsUnchanged). When enabled, event records are
// appended into pooled fixed-size chunks: steady-state recording allocates
// only when the stream outgrows the chunks already on the sink's free list.
//
// A Sink is single-run, single-goroutine state, like the machine that feeds
// it: do not share one sink between concurrently running machines. Reset
// returns a sink to its empty state while keeping chunk capacity.
package obs

import (
	"fmt"
	"io"

	"dsisim/internal/blockmap"
	"dsisim/internal/cache"
	"dsisim/internal/directory"
	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
)

// Kind classifies one coherence event.
type Kind uint8

const (
	// MsgSend: a protocol message was injected at Node (= Src) toward Peer.
	MsgSend Kind = iota
	// MsgRecv: a protocol message was delivered at Node (= Dst) from Peer.
	MsgRecv
	// CacheState: node Node's cached copy of Addr changed state Old -> New
	// (cache.State codes). Installs, invalidations, downgrades, evictions.
	CacheState
	// DirState: the home directory (Node) entry for Addr changed state
	// Old -> New (directory.State codes).
	DirState
	// SelfInval: node Node self-invalidated its copy of Addr at a
	// synchronization point (flush-at-sync, or the tear-off flash-clear when
	// FlagTearOff is set). Old holds the cache.State the copy had.
	SelfInval
	// FIFODisplace: node Node's FIFO self-invalidation buffer overflowed and
	// forced the copy of Addr out early — the Figure 5 pathology.
	FIFODisplace
	// TearOffGrant: the home directory (Node) handed Peer an untracked
	// (tear-off) copy of Addr.
	TearOffGrant
	// TxnStart: the home directory (Node) opened a transaction for Addr on
	// behalf of requester Peer — invalidations or a recall are outstanding
	// and the block is busy. Msg holds the request kind.
	TxnStart
	// TxnEnd: all acknowledgments arrived and the transaction completed.
	TxnEnd
	// Fault: the fault plan dropped, duplicated, or delayed a message sent
	// from Node to Peer. Msg holds the message kind and Old the
	// faultinj.Action code.
	Fault
	// Timeout: a hardened controller's per-transaction timer fired and the
	// request (cache side, New == 0) or the outstanding coherence actions
	// (directory side, New == 1) were re-sent. Old holds the retry count
	// (clamped to 255).
	Timeout
	// NumKinds bounds the enumeration.
	NumKinds
)

var kindNames = [NumKinds]string{
	"msg-send", "msg-recv", "cache-state", "dir-state", "self-inval",
	"fifo-displace", "tearoff-grant", "txn-start", "txn-end", "fault",
	"timeout",
}

func (k Kind) String() string {
	if k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event flag bits (Event.Flags).
const (
	// FlagSI: the message or copy was marked for self-invalidation.
	FlagSI uint8 = 1 << iota
	// FlagTearOff: the message or copy was untracked (tear-off).
	FlagTearOff
	// FlagHasVer: the message carried a version echo, or the installed copy
	// carried a version number.
	FlagHasVer
	// FlagLocal: the message never entered the network (Src == Dst).
	FlagLocal
)

// Event is one recorded coherence event. The schema (field semantics per
// Kind) is documented in docs/OBSERVABILITY.md; fields not listed for a
// kind are zero.
type Event struct {
	// Cycle is the simulated time the event happened.
	Cycle event.Time
	// Txn is the coherence transaction id (assigned per miss request at the
	// cache controller, propagated through every message the transaction
	// causes). 0 means "no transaction" (unsolicited traffic such as
	// writebacks and replacement hints).
	Txn uint64
	// Addr is the block address.
	Addr mem.Addr
	// Kind classifies the event.
	Kind Kind
	// Msg is the protocol message kind, for MsgSend/MsgRecv/TxnStart.
	Msg netsim.Kind
	// Node is where the event happened: the sender for MsgSend, the
	// receiver for MsgRecv, the cache's node for cache-side kinds, the home
	// node for directory-side kinds.
	Node int32
	// Peer is the other endpoint for messages, and the requester for
	// TxnStart/TxnEnd/TearOffGrant.
	Peer int32
	// Old and New are state codes for CacheState (cache.State) and DirState
	// (directory.State); Old is the pre-invalidation cache.State for
	// SelfInval/FIFODisplace.
	Old, New uint8
	// Flags holds the Flag* bits that applied.
	Flags uint8
}

// String renders the event as one line of the plain-text trace format.
func (e Event) String() string {
	switch e.Kind {
	case MsgSend:
		return fmt.Sprintf("[%8d] node%-2d > %-10s ->%d blk=%#x txn=%d%s",
			e.Cycle, e.Node, e.Msg, e.Peer, uint64(e.Addr), e.Txn, flagString(e.Flags))
	case MsgRecv:
		return fmt.Sprintf("[%8d] node%-2d < %-10s <-%d blk=%#x txn=%d%s",
			e.Cycle, e.Node, e.Msg, e.Peer, uint64(e.Addr), e.Txn, flagString(e.Flags))
	case CacheState:
		return fmt.Sprintf("[%8d] node%-2d cache %s->%s blk=%#x txn=%d%s",
			e.Cycle, e.Node, cache.State(e.Old), cache.State(e.New), uint64(e.Addr), e.Txn, flagString(e.Flags))
	case DirState:
		return fmt.Sprintf("[%8d] node%-2d dir   %s->%s blk=%#x txn=%d",
			e.Cycle, e.Node, directory.State(e.Old), directory.State(e.New), uint64(e.Addr), e.Txn)
	case SelfInval:
		return fmt.Sprintf("[%8d] node%-2d self-inval %s blk=%#x%s",
			e.Cycle, e.Node, cache.State(e.Old), uint64(e.Addr), flagString(e.Flags))
	case FIFODisplace:
		return fmt.Sprintf("[%8d] node%-2d fifo-displace %s blk=%#x%s",
			e.Cycle, e.Node, cache.State(e.Old), uint64(e.Addr), flagString(e.Flags))
	case TearOffGrant:
		return fmt.Sprintf("[%8d] node%-2d dir   tear-off ->%d blk=%#x txn=%d",
			e.Cycle, e.Node, e.Peer, uint64(e.Addr), e.Txn)
	case TxnStart:
		return fmt.Sprintf("[%8d] node%-2d dir   txn-start %s from %d blk=%#x txn=%d",
			e.Cycle, e.Node, e.Msg, e.Peer, uint64(e.Addr), e.Txn)
	case TxnEnd:
		return fmt.Sprintf("[%8d] node%-2d dir   txn-end   from %d blk=%#x txn=%d",
			e.Cycle, e.Node, e.Peer, uint64(e.Addr), e.Txn)
	case Fault:
		return fmt.Sprintf("[%8d] node%-2d x %-7s %-10s ->%d blk=%#x txn=%d",
			e.Cycle, e.Node, faultinj.Action(e.Old), e.Msg, e.Peer, uint64(e.Addr), e.Txn)
	case Timeout:
		side := "cache"
		if e.New == 1 {
			side = "dir"
		}
		return fmt.Sprintf("[%8d] node%-2d %-5s timeout retry=%d blk=%#x txn=%d",
			e.Cycle, e.Node, side, e.Old, uint64(e.Addr), e.Txn)
	default:
		return fmt.Sprintf("[%8d] node%-2d %s blk=%#x", e.Cycle, e.Node, e.Kind, uint64(e.Addr))
	}
}

func flagString(f uint8) string {
	if f == 0 {
		return ""
	}
	s := ""
	if f&FlagSI != 0 {
		s += " si"
	}
	if f&FlagTearOff != 0 {
		s += " tearoff"
	}
	if f&FlagHasVer != 0 {
		s += " ver"
	}
	if f&FlagLocal != 0 {
		s += " local"
	}
	return s
}

// Config parameterizes a Sink.
type Config struct {
	// PrematureWindow is the re-miss window (in cycles) that classifies a
	// self-invalidation as premature: if the same node misses on the block
	// again within the window, the self-invalidation threw the copy away too
	// early. 0 means DefaultPrematureWindow.
	PrematureWindow event.Time
	// MaxEvents caps the number of events retained (0 = unlimited). Metrics
	// keep streaming past the cap; only event-record storage stops, and
	// Dropped reports how many records were discarded, so the cap is never
	// silent.
	MaxEvents int
}

// DefaultPrematureWindow is 4× the paper's 100-cycle network latency: a
// re-miss that quickly means the block round-tripped home for nothing.
const DefaultPrematureWindow event.Time = 400

// chunkSize is the event-record pool granularity. One chunk is ~256 KiB;
// steady-state recording reuses chunks from the free list after Reset.
const chunkSize = 4096

// Sink records coherence events and streams per-block lifetime metrics.
// The zero value is NOT ready to use; call NewSink. All methods are safe on
// a nil receiver (they do nothing), so optional observability costs a
// predictable branch where disabled.
type Sink struct {
	cfg Config

	chunks [][]Event // filled chunks + the current tail chunk
	free   [][]Event // retired chunks available for reuse (after Reset)

	total   uint64 // events emitted (including dropped)
	dropped uint64 // events not retained because MaxEvents was reached

	nodes int // 1 + highest node id observed

	m      BlockMetrics
	blocks blockmap.Map[blockTrack] // keyed by key(node, block)
	open   []event.Time             // txn id -> start cycle + 1 (0 = not open)
}

// NewSink builds an empty sink.
func NewSink(cfg Config) *Sink {
	if cfg.PrematureWindow == 0 {
		cfg.PrematureWindow = DefaultPrematureWindow
	}
	s := &Sink{cfg: cfg}
	s.reset()
	return s
}

func (s *Sink) reset() {
	for _, c := range s.chunks {
		s.free = append(s.free, c[:0])
	}
	s.chunks = s.chunks[:0]
	s.total, s.dropped, s.nodes = 0, 0, 0
	s.m = BlockMetrics{PrematureWindow: s.cfg.PrematureWindow}
	s.blocks.Reset()
	clear(s.open)
}

// Reset empties the sink for reuse, returning event chunks to the free list
// so a reused sink records without reallocating.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.reset()
}

// Len returns the number of retained events.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	return int(s.total - s.dropped)
}

// Total returns the number of events emitted, retained or not.
func (s *Sink) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Dropped returns the number of events discarded by the MaxEvents cap.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Nodes returns 1 + the highest node id observed.
func (s *Sink) Nodes() int {
	if s == nil {
		return 0
	}
	return s.nodes
}

// ForEach calls fn for every retained event in emission order.
func (s *Sink) ForEach(fn func(*Event)) {
	if s == nil {
		return
	}
	for _, c := range s.chunks {
		for i := range c {
			fn(&c[i])
		}
	}
}

// Events returns a copy of the retained event stream.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	out := make([]Event, 0, s.Len())
	for _, c := range s.chunks {
		out = append(out, c...)
	}
	return out
}

// Tail returns a copy of the last n retained events (fewer when the stream
// is shorter). The liveness watchdog uses it to attach recent history to
// diagnostic dumps.
func (s *Sink) Tail(n int) []Event {
	if s == nil || n <= 0 {
		return nil
	}
	if l := s.Len(); n > l {
		n = l
	}
	out := make([]Event, n)
	i := n
	for c := len(s.chunks) - 1; c >= 0 && i > 0; c-- {
		chunk := s.chunks[c]
		take := len(chunk)
		if take > i {
			take = i
		}
		copy(out[i-take:], chunk[len(chunk)-take:])
		i -= take
	}
	return out
}

// emit records e: metrics always, the event record unless capped.
func (s *Sink) emit(e Event) {
	if s == nil {
		return
	}
	s.total++
	if n := int(e.Node) + 1; n > s.nodes {
		s.nodes = n
	}
	if p := int(e.Peer) + 1; p > s.nodes && (e.Kind == MsgSend || e.Kind == MsgRecv) {
		s.nodes = p
	}
	s.observe(&e)
	// total already counts e, so Len() includes the candidate record.
	if s.cfg.MaxEvents > 0 && s.Len() > s.cfg.MaxEvents {
		s.dropped++
		return
	}
	n := len(s.chunks)
	if n == 0 || len(s.chunks[n-1]) == cap(s.chunks[n-1]) {
		var c []Event
		if f := len(s.free); f > 0 {
			c = s.free[f-1]
			s.free = s.free[:f-1]
		} else {
			c = make([]Event, 0, chunkSize)
		}
		s.chunks = append(s.chunks, c)
		n++
	}
	s.chunks[n-1] = append(s.chunks[n-1], e)
}

// --- emission helpers (the producer API) -----------------------------------

// msgFlags packs a message's annotation bits.
func msgFlags(m netsim.Message) uint8 {
	var f uint8
	if m.SI {
		f |= FlagSI
	}
	if m.TearOff {
		f |= FlagTearOff
	}
	if m.HasVer {
		f |= FlagHasVer
	}
	if m.Src == m.Dst {
		f |= FlagLocal
	}
	return f
}

// MsgSent implements netsim.Observer: m was injected at m.Src at time now.
func (s *Sink) MsgSent(now event.Time, m netsim.Message, arrive event.Time) {
	_ = arrive
	s.emit(Event{
		Cycle: now, Kind: MsgSend, Node: int32(m.Src), Peer: int32(m.Dst),
		Addr: mem.BlockOf(m.Addr), Txn: m.Txn, Msg: m.Kind, Flags: msgFlags(m),
	})
}

// MsgDelivered implements netsim.Observer: m arrived at m.Dst at time now.
func (s *Sink) MsgDelivered(now event.Time, m netsim.Message) {
	s.emit(Event{
		Cycle: now, Kind: MsgRecv, Node: int32(m.Dst), Peer: int32(m.Src),
		Addr: mem.BlockOf(m.Addr), Txn: m.Txn, Msg: m.Kind, Flags: msgFlags(m),
	})
}

// MsgFault implements netsim.Observer: the fault plan applied action to m.
func (s *Sink) MsgFault(now event.Time, m netsim.Message, action faultinj.Action, delay event.Time) {
	_ = delay
	s.emit(Event{
		Cycle: now, Kind: Fault, Node: int32(m.Src), Peer: int32(m.Dst),
		Addr: mem.BlockOf(m.Addr), Txn: m.Txn, Msg: m.Kind,
		Old: uint8(action), Flags: msgFlags(m),
	})
}

// OnRetryTimeout records a hardened controller's transaction timer firing at
// node: the cache controller re-sending its request (dir == false) or the
// home directory re-sending outstanding invalidations/recalls (dir == true).
func (s *Sink) OnRetryTimeout(now event.Time, node int, b mem.Addr, txn uint64, retries int, dir bool) {
	if retries > 255 {
		retries = 255
	}
	var side uint8
	if dir {
		side = 1
	}
	s.emit(Event{
		Cycle: now, Kind: Timeout, Node: int32(node), Addr: b, Txn: txn,
		Old: uint8(retries), New: side,
	})
}

// OnCacheState records a cache-side state transition at node.
func (s *Sink) OnCacheState(now event.Time, node int, b mem.Addr, txn uint64, old, new cache.State, flags uint8) {
	s.emit(Event{
		Cycle: now, Kind: CacheState, Node: int32(node), Addr: b, Txn: txn,
		Old: uint8(old), New: uint8(new), Flags: flags,
	})
}

// OnDirState records a directory-side state transition at the home node.
func (s *Sink) OnDirState(now event.Time, home int, b mem.Addr, txn uint64, old, new directory.State) {
	s.emit(Event{
		Cycle: now, Kind: DirState, Node: int32(home), Addr: b, Txn: txn,
		Old: uint8(old), New: uint8(new),
	})
}

// OnSelfInval records a self-invalidation at node; fifo marks a forced FIFO
// displacement rather than a sync-point flush.
func (s *Sink) OnSelfInval(now event.Time, node int, b mem.Addr, old cache.State, tearOff, fifo bool) {
	k := SelfInval
	if fifo {
		k = FIFODisplace
	}
	var f uint8 = FlagSI
	if tearOff {
		f |= FlagTearOff
	}
	s.emit(Event{Cycle: now, Kind: k, Node: int32(node), Addr: b, Old: uint8(old), Flags: f})
}

// OnTearOffGrant records the home directory handing requester an untracked
// copy.
func (s *Sink) OnTearOffGrant(now event.Time, home int, b mem.Addr, txn uint64, requester int) {
	s.emit(Event{
		Cycle: now, Kind: TearOffGrant, Node: int32(home), Peer: int32(requester),
		Addr: b, Txn: txn, Flags: FlagTearOff,
	})
}

// OnTxnStart records the home directory opening a transaction for req.
func (s *Sink) OnTxnStart(now event.Time, home int, b mem.Addr, txn uint64, requester int, req netsim.Kind) {
	s.emit(Event{
		Cycle: now, Kind: TxnStart, Node: int32(home), Peer: int32(requester),
		Addr: b, Txn: txn, Msg: req,
	})
}

// OnTxnEnd records the transaction's completion (all acks collected).
func (s *Sink) OnTxnEnd(now event.Time, home int, b mem.Addr, txn uint64, requester int) {
	s.emit(Event{
		Cycle: now, Kind: TxnEnd, Node: int32(home), Peer: int32(requester),
		Addr: b, Txn: txn,
	})
}

// --- filtering and plain-text rendering -------------------------------------

// Filter selects a subset of the event stream. Zero values mean "no
// constraint" except Node and Txn, which use -1/0 respectively as their
// "any" value (NewFilter returns a match-everything filter).
type Filter struct {
	Node  int        // -1 = any
	Block mem.Addr   // 0 = any (block address)
	Txn   uint64     // 0 = any
	From  event.Time // inclusive lower cycle bound
	To    event.Time // inclusive upper cycle bound, 0 = unbounded
	Kinds uint16     // bit per Kind, 0 = all
}

// NewFilter returns a filter matching every event.
func NewFilter() Filter { return Filter{Node: -1} }

// WithKind restricts the filter to kind (cumulative across calls).
func (f Filter) WithKind(k Kind) Filter {
	f.Kinds |= 1 << uint(k)
	return f
}

// Match reports whether e passes the filter.
func (f Filter) Match(e *Event) bool {
	if f.Node >= 0 && int(e.Node) != f.Node && !(int(e.Peer) == f.Node && (e.Kind == MsgSend || e.Kind == MsgRecv)) {
		return false
	}
	if f.Block != 0 && e.Addr != mem.BlockOf(f.Block) {
		return false
	}
	if f.Txn != 0 && e.Txn != f.Txn {
		return false
	}
	if e.Cycle < f.From {
		return false
	}
	if f.To != 0 && e.Cycle > f.To {
		return false
	}
	if f.Kinds != 0 && f.Kinds&(1<<uint(e.Kind)) == 0 {
		return false
	}
	return true
}

// WriteText renders the filtered event stream one line per event, at most
// limit lines (0 = all). It returns the number of events matched (not the
// number printed).
func (s *Sink) WriteText(w io.Writer, f Filter, limit int) (int, error) {
	if s == nil {
		return 0, nil
	}
	matched := 0
	var err error
	s.ForEach(func(e *Event) {
		if err != nil || !f.Match(e) {
			return
		}
		matched++
		if limit > 0 && matched > limit {
			return
		}
		_, err = fmt.Fprintln(w, e.String())
	})
	if err != nil {
		return matched, err
	}
	if limit > 0 && matched > limit {
		_, err = fmt.Fprintf(w, "... %d more events matched (raise -limit to see them)\n", matched-limit)
	}
	return matched, err
}
