package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dsisim/internal/machine"
	"dsisim/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteChromeGolden pins the Chrome trace_event output of a deterministic
// micro run byte for byte. The export format is a documented stability
// surface (docs/OBSERVABILITY.md); regenerate deliberately with
//
//	go test ./internal/obs -run WriteChromeGolden -update
func TestWriteChromeGolden(t *testing.T) {
	s := obs.NewSink(obs.Config{})
	res := machine.New(microConfig(s)).Run(pingPong())
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Errors[0])
	}

	var got bytes.Buffer
	if err := s.WriteChrome(&got); err != nil {
		t.Fatal(err)
	}

	// The output must be valid JSON with the trace_event envelope regardless
	// of the golden comparison.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got.Bytes(), &doc); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
	}
	for _, ph := range []string{"M", "X", "s", "f", "b", "e"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in export (got %v)", ph, phases)
		}
	}
	if phases["s"] != phases["f"] {
		t.Errorf("unbalanced flow arrows: %d starts, %d finishes", phases["s"], phases["f"])
	}
	if phases["b"] != phases["e"] {
		t.Errorf("unbalanced txn spans: %d begins, %d ends", phases["b"], phases["e"])
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, got.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("chrome export changed (%d bytes, golden %d). If intentional, regenerate with -update.",
			got.Len(), len(want))
	}
}
