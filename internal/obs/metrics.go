package obs

import (
	"fmt"
	"math/bits"

	"dsisim/internal/cache"
	"dsisim/internal/event"
	"dsisim/internal/mem"
	"dsisim/internal/netsim"
	"dsisim/internal/stats"
)

// HistBuckets is the number of power-of-two duration buckets: bucket i
// holds durations in [2^i, 2^(i+1)), with the last bucket a catch-all.
const HistBuckets = 24

// Histogram is a log2-bucketed duration histogram.
type Histogram struct {
	Buckets [HistBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Observe adds one duration sample (negative samples are clamped to 0).
func (h *Histogram) Observe(d int64) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d)) // 0 -> bucket 0, [2^i,2^(i+1)) -> bucket i
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// BucketLabel names bucket i ("[2^i, 2^(i+1)) cycles").
func BucketLabel(i int) string {
	if i == 0 {
		return "<2"
	}
	if i == HistBuckets-1 {
		return fmt.Sprintf(">=%d", int64(1)<<uint(i))
	}
	return fmt.Sprintf("%d-%d", int64(1)<<uint(i), int64(1)<<uint(i+1)-1)
}

// BlockMetrics are the per-block lifetime measurements a Sink derives from
// the event stream. All cycle quantities are simulated cycles; metrics
// cover the whole run including warm-up (the stream has no warm-up
// boundary).
type BlockMetrics struct {
	// PrematureWindow is the configured re-miss window.
	PrematureWindow event.Time

	// TimeShared and TimeExclusive are residency histograms: how long a
	// cached copy stayed in the state before leaving it (by invalidation,
	// downgrade, eviction, or self-invalidation).
	TimeShared    Histogram
	TimeExclusive Histogram
	// ReFetchGap measures, for each re-install, the cycles between the
	// node's copy disappearing and the node fetching the block again — the
	// "did self-invalidation fire too early?" distribution.
	ReFetchGap Histogram
	// TxnLatency measures directory busy periods: transaction start (first
	// invalidation/recall sent) to completion (all acks collected).
	TxnLatency Histogram

	// Transactions counts directory transactions opened.
	Transactions int64
	// SelfInvals counts sync-point self-invalidations (including tear-off
	// flash-clears); FIFODisplacements counts early self-invalidations
	// forced by a full FIFO.
	SelfInvals        int64
	FIFODisplacements int64
	// PrematureSelfInvals counts self-invalidated blocks the same node
	// missed on again within PrematureWindow cycles — self-invalidations
	// that destroyed a copy the node still wanted.
	PrematureSelfInvals int64
	// EchoLosses counts miss requests that carried no version echo although
	// an earlier grant had delivered a version to this node — the frame was
	// recycled and the tag history lost, so the directory cannot match
	// versions (the versions-vs-states divergence, measured directly).
	EchoLosses int64
	// TearOffGrants counts untracked (tear-off) grants.
	TearOffGrants int64
	// FaultsInjected counts messages the fault plan dropped, duplicated, or
	// delayed; RetryTimeouts counts hardened-controller timer firings. Both
	// are zero outside fault-injection runs (docs/FAULTS.md).
	FaultsInjected int64
	RetryTimeouts  int64
}

// blockTrack is the streaming per-(node, block) state behind BlockMetrics.
type blockTrack struct {
	state      cache.State
	since      event.Time
	lastGone   event.Time // when the copy last disappeared (any cause)
	haveGone   bool
	lastSelfIn event.Time // when the copy was last self-invalidated
	haveSelfIn bool
	hadVer     bool // the most recent install carried a version number
}

// key packs (node, block) into one block-table index. Node ids are < 64
// (directory.NodeSet is a 64-bit full map), so 6 bits suffice. Composite
// keys stay dense for the configured workloads; larger address spaces spill
// into the block table's overflow region.
func key(node int32, b mem.Addr) uint64 {
	return mem.BlockIndex(b)<<6 | uint64(node)&63
}

//dsi:hotpath
func (s *Sink) track(node int32, b mem.Addr) *blockTrack {
	return s.blocks.Ensure(key(node, b))
}

// observe updates the streaming metrics with e. It runs for every emitted
// event, retained or not.
func (s *Sink) observe(e *Event) {
	m := &s.m
	switch e.Kind {
	case MsgSend:
		// Only fresh requests signal premature self-invalidation or a lost
		// version echo; the remaining kinds carry no streaming signal.
		if e.Msg == netsim.GetS || e.Msg == netsim.GetX || e.Msg == netsim.Upgrade {
			t := s.track(e.Node, e.Addr)
			if t.haveSelfIn && e.Cycle-t.lastSelfIn <= m.PrematureWindow {
				m.PrematureSelfInvals++
				t.haveSelfIn = false // count each self-invalidation at most once
			}
			if e.Flags&FlagHasVer == 0 && t.hadVer {
				m.EchoLosses++
				t.hadVer = false // one loss per lost frame
			}
		}
	case CacheState:
		s.leaveState(e.Node, e.Addr, e.Cycle, cache.State(e.Old))
		t := s.track(e.Node, e.Addr)
		t.state = cache.State(e.New)
		t.since = e.Cycle
		if cache.State(e.New) == cache.Invalid {
			t.lastGone, t.haveGone = e.Cycle, true
		} else if cache.State(e.Old) == cache.Invalid {
			if t.haveGone {
				m.ReFetchGap.Observe(int64(e.Cycle - t.lastGone))
			}
			t.hadVer = e.Flags&FlagHasVer != 0
		}
	case SelfInval, FIFODisplace:
		if e.Kind == SelfInval {
			m.SelfInvals++
		} else {
			m.FIFODisplacements++
		}
		s.leaveState(e.Node, e.Addr, e.Cycle, cache.State(e.Old))
		t := s.track(e.Node, e.Addr)
		t.state = cache.Invalid
		t.since = e.Cycle
		t.lastGone, t.haveGone = e.Cycle, true
		t.lastSelfIn, t.haveSelfIn = e.Cycle, true
	case TearOffGrant:
		m.TearOffGrants++
	case TxnStart:
		m.Transactions++
		// Transaction ids are assigned sequentially from 1, so a plain
		// slice indexed by id replaces the open-transaction map.
		for uint64(len(s.open)) <= e.Txn {
			s.open = append(s.open, 0)
		}
		s.open[e.Txn] = e.Cycle + 1
	case TxnEnd:
		if e.Txn < uint64(len(s.open)) && s.open[e.Txn] != 0 {
			m.TxnLatency.Observe(int64(e.Cycle - (s.open[e.Txn] - 1)))
			s.open[e.Txn] = 0
		}
	case Fault:
		m.FaultsInjected++
	case Timeout:
		m.RetryTimeouts++
	case MsgRecv, DirState:
		// No streaming metrics derive from deliveries or directory-side
		// transitions; they are retained for the ring buffer only.
	}
}

// leaveState closes the residency interval a copy is leaving.
func (s *Sink) leaveState(node int32, b mem.Addr, now event.Time, old cache.State) {
	if old == cache.Invalid {
		return
	}
	t := s.track(node, b)
	d := int64(now - t.since)
	switch old {
	case cache.Shared:
		s.m.TimeShared.Observe(d)
	case cache.Exclusive:
		s.m.TimeExclusive.Observe(d)
	case cache.Invalid:
		// Filtered above: a copy leaving Invalid has no residency interval.
	}
}

// Metrics returns a snapshot of the lifetime metrics derived so far.
// Residency intervals still open (copies alive at the end of the run) are
// not counted.
func (s *Sink) Metrics() *BlockMetrics {
	if s == nil {
		return nil
	}
	m := s.m
	return &m
}

// Tables renders the metrics as plain-text tables in the house style.
func (m *BlockMetrics) Tables() []stats.Table {
	counters := stats.Table{
		Title:  "Block lifetime counters",
		Header: []string{"counter", "value"},
	}
	counters.AddRow("transactions", fmt.Sprint(m.Transactions))
	counters.AddRow("self-invalidations", fmt.Sprint(m.SelfInvals))
	counters.AddRow("fifo displacements", fmt.Sprint(m.FIFODisplacements))
	counters.AddRow(fmt.Sprintf("premature self-invals (re-miss <= %d cyc)", m.PrematureWindow),
		fmt.Sprint(m.PrematureSelfInvals))
	counters.AddRow("version echo losses", fmt.Sprint(m.EchoLosses))
	counters.AddRow("tear-off grants", fmt.Sprint(m.TearOffGrants))
	if m.FaultsInjected > 0 || m.RetryTimeouts > 0 {
		counters.AddRow("faults injected", fmt.Sprint(m.FaultsInjected))
		counters.AddRow("retry timeouts", fmt.Sprint(m.RetryTimeouts))
	}

	res := stats.Table{
		Title:  "Time in state before leaving it (cycles)",
		Header: []string{"state", "samples", "mean", "max"},
	}
	add := func(name string, h *Histogram) {
		res.AddRow(name, fmt.Sprint(h.Count), fmt.Sprintf("%.0f", h.Mean()), fmt.Sprint(h.Max))
	}
	add("Shared", &m.TimeShared)
	add("Exclusive", &m.TimeExclusive)
	add("(re-fetch gap)", &m.ReFetchGap)
	add("(txn latency)", &m.TxnLatency)

	hist := stats.Table{
		Title:  "Residency histograms (log2 duration buckets)",
		Header: []string{"cycles", "shared", "exclusive", "re-fetch gap", "txn latency"},
	}
	top := 0
	for i := 0; i < HistBuckets; i++ {
		if m.TimeShared.Buckets[i]+m.TimeExclusive.Buckets[i]+m.ReFetchGap.Buckets[i]+m.TxnLatency.Buckets[i] > 0 {
			top = i
		}
	}
	for i := 0; i <= top; i++ {
		hist.AddRow(BucketLabel(i),
			fmt.Sprint(m.TimeShared.Buckets[i]),
			fmt.Sprint(m.TimeExclusive.Buckets[i]),
			fmt.Sprint(m.ReFetchGap.Buckets[i]),
			fmt.Sprint(m.TxnLatency.Buckets[i]))
	}
	return []stats.Table{counters, res, hist}
}

// Render returns the tables concatenated as one report.
func (m *BlockMetrics) Render() string {
	out := ""
	for i, t := range m.Tables() {
		if i > 0 {
			out += "\n"
		}
		out += t.Render()
	}
	return out
}
