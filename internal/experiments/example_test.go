package experiments_test

import (
	"fmt"

	"dsisim/internal/experiments"
	"dsisim/internal/workload"
)

// RunOne simulates a single (workload, protocol) cell; the simulator is
// deterministic, so the numbers below are exact and stable.
func ExampleRunOne() {
	o := experiments.Options{Processors: 8, Scale: workload.ScaleTest}
	base, err := experiments.RunOne("em3d", experiments.SC, o)
	if err != nil {
		panic(err)
	}
	dsi, err := experiments.RunOne("em3d", experiments.V, o)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SC: %d cycles\n", base.ExecTime)
	fmt.Printf("V:  %d cycles\n", dsi.ExecTime)
	fmt.Printf("V sent fewer invalidations: %v\n",
		dsi.Messages.Invalidation() < base.Messages.Invalidation())
	// Output:
	// SC: 7465 cycles
	// V:  7496 cycles
	// V sent fewer invalidations: true
}

// RunMatrix runs a (workload × protocol) grid and exposes paper-style
// normalized comparisons. Ocean is the paper's best case for DSI with
// version numbers.
func ExampleRunMatrix() {
	o := experiments.Options{Processors: 8, Scale: workload.ScaleTest}
	m, err := experiments.RunMatrix(
		[]string{"ocean"},
		[]experiments.Label{experiments.SC, experiments.V},
		o,
	)
	if err != nil {
		panic(err)
	}
	norm := m.Normalized("ocean", experiments.V, experiments.SC)
	fmt.Printf("V runs at %.2f of SC's execution time\n", norm)
	// Output:
	// V runs at 0.82 of SC's execution time
}
