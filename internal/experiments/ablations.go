package experiments

import (
	"fmt"

	"dsisim/internal/core"
	"dsisim/internal/machine"
	"dsisim/internal/proto"
	"dsisim/internal/workload"
)

// This file holds the ablation runners: variations the paper motivates but
// does not tabulate (FIFO capacity, identifier bounds, the upgrade
// exemption). They back the BenchmarkAblation* entries and the design-note
// section of EXPERIMENTS.md.

func runWith(name string, o Options, cons proto.Consistency, pol core.Policy) (machine.Result, error) {
	o = o.defaults()
	prog, err := workload.New(name, o.Scale)
	if err != nil {
		return machine.Result{}, err
	}
	cfg := machine.Config{
		Processors:     o.Processors,
		CacheBytes:     o.Class.Bytes(),
		CacheAssoc:     4,
		NetworkLatency: o.Latency,
		Consistency:    cons,
		Policy:         pol,
	}
	res := machine.New(cfg).Run(prog)
	if res.Failed() {
		return res, fmt.Errorf("%s: %s", name, res.Errors[0])
	}
	return res, nil
}

// RunFIFO runs SC + version-number DSI with a FIFO of the given capacity.
func RunFIFO(name string, capacity int, o Options) (machine.Result, error) {
	return runWith(name, o, proto.SC, core.Policy{
		Identifier:       core.Versions{},
		NewMechanism:     func() core.Mechanism { return core.NewFIFO(capacity) },
		UpgradeExemption: true,
	})
}

// RunIdentifier runs SC DSI with the named identification scheme: "never"
// (base protocol), "states", "versions", or "always" (mark everything, an
// upper bound on self-invalidation aggressiveness).
func RunIdentifier(name, id string, o Options) (machine.Result, error) {
	pol := core.Policy{UpgradeExemption: true}
	switch id {
	case "never":
		pol = core.Policy{}
	case "states":
		pol.Identifier = core.States{}
	case "versions":
		pol.Identifier = core.Versions{}
	case "always":
		pol.Identifier = core.Always{}
	default:
		return machine.Result{}, fmt.Errorf("experiments: unknown identifier %q", id)
	}
	return runWith(name, o, proto.SC, pol)
}

// RunUpgradeExemption runs SC + version DSI with the §4.1 upgrade special
// case toggled.
func RunUpgradeExemption(name string, exempt bool, o Options) (machine.Result, error) {
	return runWith(name, o, proto.SC, core.Policy{
		Identifier:       core.Versions{},
		UpgradeExemption: exempt,
	})
}

// RunMigratory runs SC with the migratory-sharing baseline, optionally
// composed with version-number DSI.
func RunMigratory(name string, withDSI bool, o Options) (machine.Result, error) {
	pol := core.Policy{Migratory: true}
	if withDSI {
		pol.Identifier = core.Versions{}
		pol.UpgradeExemption = true
	}
	return runWith(name, o, proto.SC, pol)
}

// RunLimitedDir runs a limited-pointer directory (Dir_iNB-style) with the
// given pointer count, under the base protocol or with DSI + tear-off-free
// version marking. DSI's self-invalidation keeps sharer sets small, so it
// relieves pointer pressure — the interaction this ablation measures.
func RunLimitedDir(name string, pointers int, dsi bool, o Options) (machine.Result, error) {
	o = o.defaults()
	prog, err := workload.New(name, o.Scale)
	if err != nil {
		return machine.Result{}, err
	}
	pol := core.Policy{}
	if dsi {
		pol = core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}
	}
	cfg := machine.Config{
		Processors:     o.Processors,
		CacheBytes:     o.Class.Bytes(),
		CacheAssoc:     4,
		NetworkLatency: o.Latency,
		Consistency:    proto.SC,
		SharerLimit:    pointers,
		Policy:         pol,
	}
	res := machine.New(cfg).Run(prog)
	if res.Failed() {
		return res, fmt.Errorf("%s (limit %d): %s", name, pointers, res.Errors[0])
	}
	return res, nil
}

// RunWC runs weak consistency with a configurable write-buffer size (the
// paper's is 16) for buffer-depth ablations.
func RunWC(name string, wbEntries int, dsi bool, o Options) (machine.Result, error) {
	o = o.defaults()
	prog, err := workload.New(name, o.Scale)
	if err != nil {
		return machine.Result{}, err
	}
	pol := core.Policy{}
	if dsi {
		pol = core.Policy{Identifier: core.Versions{}, TearOff: true}
	}
	cfg := machine.Config{
		Processors:         o.Processors,
		CacheBytes:         o.Class.Bytes(),
		CacheAssoc:         4,
		NetworkLatency:     o.Latency,
		Consistency:        proto.WC,
		WriteBufferEntries: wbEntries,
		Policy:             pol,
	}
	res := machine.New(cfg).Run(prog)
	if res.Failed() {
		return res, fmt.Errorf("%s: %s", name, res.Errors[0])
	}
	return res, nil
}
