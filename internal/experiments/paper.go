package experiments

import (
	"fmt"
	"strings"

	"dsisim/internal/event"
	"dsisim/internal/stats"
	"dsisim/internal/workload"
)

// This file defines one driver per paper artifact. Each returns both the
// raw matrices (for assertions in tests) and rendered text (for
// cmd/dsibench and EXPERIMENTS.md).

// Artifact names accepted by Run.
const (
	ArtifactTable1 = "tab1"
	ArtifactFig3   = "fig3"
	ArtifactFig4   = "fig4"
	ArtifactFig5   = "fig5"
	ArtifactTable2 = "tab2" // includes Figure 6
	ArtifactTable3 = "tab3"
	// ArtifactSweeps is an extension beyond the paper: latency / cache /
	// machine-size sensitivity of the DSI benefit.
	ArtifactSweeps = "sweep"
	// ArtifactTraffic is an extension beyond the paper: the traffic-shaped
	// generators' grid, recovery counters, and hot-writer skew sweep.
	ArtifactTraffic = "traffic"
)

// Artifacts lists every reproducible table/figure.
func Artifacts() []string {
	return []string{ArtifactTable1, ArtifactFig3, ArtifactFig4, ArtifactFig5, ArtifactTable2, ArtifactTable3, ArtifactSweeps, ArtifactTraffic}
}

// Run executes one artifact by name and returns its rendered report.
func Run(name string, o Options) (string, error) {
	switch name {
	case ArtifactTable1:
		return Table1(o.Scale), nil
	case ArtifactFig3:
		return Fig3(o)
	case ArtifactFig4:
		return Fig4(o)
	case ArtifactFig5:
		return Fig5(o)
	case ArtifactTable2:
		return Table2(o)
	case ArtifactTable3:
		return Table3(o)
	case ArtifactSweeps:
		return Sweeps(o)
	case ArtifactTraffic:
		return Traffic(o)
	default:
		return "", fmt.Errorf("experiments: unknown artifact %q (have %v)", name, Artifacts())
	}
}

// Table1 reports the application programs and their (scaled) input sets.
func Table1(scale workload.Scale) string {
	t := stats.Table{
		Title:  "TABLE 1. Application Programs (scaled inputs, see DESIGN.md)",
		Header: []string{"name", "input data set"},
	}
	desc := map[string]string{
		"barnes":  describeBarnes(scale),
		"em3d":    describeEM3D(scale),
		"ocean":   describeOcean(scale),
		"sparse":  describeSparse(scale),
		"tomcatv": describeTomcatv(scale),
	}
	for _, n := range workload.PaperNames() {
		t.AddRow(n, desc[n])
	}
	return t.Render()
}

func describeBarnes(s workload.Scale) string {
	p := workload.BarnesDefaults()
	if s == workload.ScaleTest {
		return "64 bodies, 2 iterations (test scale)"
	}
	return fmt.Sprintf("%d bodies, %d iterations (paper: 2048 bodies, 5 iterations)", p.Bodies, p.Iters)
}

func describeEM3D(s workload.Scale) string {
	p := workload.EM3DDefaults()
	if s == workload.ScaleTest {
		return "12 nodes/proc, 2 iterations (test scale)"
	}
	return fmt.Sprintf("%d nodes/proc, degree %d, %.0f%% remote, %d iterations (paper: 192,000 nodes, degree 5, 5%% remote)",
		p.NodesPerProc, p.Degree, p.PctRemote*100, p.Iters)
}

func describeOcean(s workload.Scale) string {
	p := workload.OceanDefaults()
	if s == workload.ScaleTest {
		return "16x16, 2 iterations (test scale)"
	}
	return fmt.Sprintf("%dx%d, %d iterations (paper: 98x98, 1 day)", p.N, p.N, p.Iters)
}

func describeSparse(s workload.Scale) string {
	p := workload.SparseDefaults()
	if s == workload.ScaleTest {
		return "64 unknowns, 2 iterations (test scale)"
	}
	return fmt.Sprintf("%d unknowns dense, %d iterations (paper: 512x512 dense, 5 iterations)", p.N, p.Iters)
}

func describeTomcatv(s workload.Scale) string {
	p := workload.TomcatvDefaults()
	if s == workload.ScaleTest {
		return "32x32, 2 iterations (test scale)"
	}
	return fmt.Sprintf("%dx%d, %d arrays, %d iterations (paper: 512x512, 5 iterations)", p.N, p.N, p.Arrays, p.Iters)
}

// Fig3Protocols are the bars of Figure 3, left to right.
var Fig3Protocols = []Label{SC, W, S, V}

// Fig3Matrices runs Figure 3's grid (both cache classes, 100-cycle
// network) and returns one matrix per class.
func Fig3Matrices(o Options) (small, large *Matrix, err error) {
	o = o.defaults()
	o.Latency = 100
	o.Class = SmallCache
	small, err = RunMatrix(workload.PaperNames(), Fig3Protocols, o)
	if err != nil {
		return nil, nil, err
	}
	o.Class = LargeCache
	large, err = RunMatrix(workload.PaperNames(), Fig3Protocols, o)
	return small, large, err
}

// Fig3 renders Figure 3: normalized execution time under sequential
// consistency with per-category breakdowns.
func Fig3(o Options) (string, error) {
	small, large, err := Fig3Matrices(o)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 3. Performance of Dynamic Self-Invalidation Under Sequential Consistency\n")
	sb.WriteString("(execution time normalized to SC; 100-cycle network)\n\n")
	t := small.Table(fmt.Sprintf("%v cache", SmallCache), SC)
	sb.WriteString(t.Render())
	sb.WriteByte('\n')
	t = large.Table(fmt.Sprintf("%v cache", LargeCache), SC)
	sb.WriteString(t.Render())
	sb.WriteByte('\n')
	sb.WriteString(large.Chart(fmt.Sprintf("%v cache, normalized execution time", LargeCache), SC).Render())
	sb.WriteByte('\n')
	for _, w := range workload.PaperNames() {
		bt := large.BreakdownTable(w)
		sb.WriteString(bt.Render())
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Fig4Matrices runs the 1000-cycle-network grid of §5.2 (text numbers use
// the small cache; Figure 4 itself shows the large cache).
func Fig4Matrices(o Options) (small, large *Matrix, err error) {
	o = o.defaults()
	o.Latency = 1000
	o.Class = SmallCache
	small, err = RunMatrix(workload.PaperNames(), Fig3Protocols, o)
	if err != nil {
		return nil, nil, err
	}
	o.Class = LargeCache
	large, err = RunMatrix(workload.PaperNames(), Fig3Protocols, o)
	return small, large, err
}

// Fig4 renders Figure 4: impact of network latency.
func Fig4(o Options) (string, error) {
	small, large, err := Fig4Matrices(o)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 4. Impact of Network Latency (1000-cycle network)\n\n")
	sb.WriteString(small.Table(fmt.Sprintf("%v cache (§5.2 text)", SmallCache), SC).Render())
	sb.WriteByte('\n')
	sb.WriteString(large.Table(fmt.Sprintf("%v cache (Figure 4)", LargeCache), SC).Render())
	sb.WriteByte('\n')
	sb.WriteString(large.Chart(fmt.Sprintf("%v cache, 1000-cycle network", LargeCache), SC).Render())
	return sb.String(), nil
}

// Fig5Protocols compares the self-invalidation mechanisms.
var Fig5Protocols = []Label{SC, VFIFO, V}

// Fig5Matrix runs Figure 5's grid: version-number DSI with the 64-entry
// FIFO versus flush-at-synchronization, large cache, 100-cycle network.
func Fig5Matrix(o Options) (*Matrix, error) {
	o = o.defaults()
	o.Latency = 100
	o.Class = LargeCache
	return RunMatrix(workload.PaperNames(), Fig5Protocols, o)
}

// Fig5 renders Figure 5: self-invalidation mechanisms.
func Fig5(o Options) (string, error) {
	m, err := Fig5Matrix(o)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 5. Self-Invalidation Mechanisms\n")
	sb.WriteString("(2MB-class cache, 100-cycle network, DSI with version numbers)\n\n")
	sb.WriteString(m.Table("execution time normalized to SC", SC).Render())
	sb.WriteString("\nFIFO displacements (self-invalidations forced early by the 64-entry buffer):\n")
	t := stats.Table{Header: []string{"benchmark", "displacements"}}
	for _, w := range m.Workloads {
		t.AddRow(w, fmt.Sprint(m.Get(w, VFIFO).FIFODisplacements))
	}
	sb.WriteString(t.Render())
	return sb.String(), nil
}

// Table2Configs are the four machine configurations of Table 2.
type Table2Cell struct {
	Class   CacheClass
	Latency int64
}

// Table2Matrices runs W vs W+DSI on the four configurations of Table 2 /
// Figure 6.
func Table2Matrices(o Options) (map[Table2Cell]*Matrix, error) {
	o = o.defaults()
	out := make(map[Table2Cell]*Matrix)
	for _, cell := range []Table2Cell{
		{SmallCache, 100}, {LargeCache, 100}, {SmallCache, 1000}, {LargeCache, 1000},
	} {
		oo := o
		oo.Class = cell.Class
		oo.Latency = event.Time(cell.Latency)
		m, err := RunMatrix(workload.PaperNames(), []Label{W, WDSI}, oo)
		if err != nil {
			return nil, err
		}
		out[cell] = m
	}
	return out, nil
}

// Table2 renders Table 2 (and Figure 6's data): weakly consistent DSI
// normalized execution time.
func Table2(o Options) (string, error) {
	ms, err := Table2Matrices(o)
	if err != nil {
		return "", err
	}
	t := stats.Table{
		Title: "TABLE 2. Weakly Consistent DSI Normalized Execution Time (W+DSI / W)",
		Header: []string{"benchmark",
			"100cyc " + SmallCache.String(), "100cyc " + LargeCache.String(),
			"1000cyc " + SmallCache.String(), "1000cyc " + LargeCache.String()},
	}
	for _, w := range workload.PaperNames() {
		t.AddRow(w,
			stats.Norm(ms[Table2Cell{SmallCache, 100}].Normalized(w, WDSI, W)),
			stats.Norm(ms[Table2Cell{LargeCache, 100}].Normalized(w, WDSI, W)),
			stats.Norm(ms[Table2Cell{SmallCache, 1000}].Normalized(w, WDSI, W)),
			stats.Norm(ms[Table2Cell{LargeCache, 1000}].Normalized(w, WDSI, W)))
	}
	return t.Render(), nil
}

// Table3Matrices runs W vs W+DSI at 100 cycles on both cache classes for
// the message-reduction table.
func Table3Matrices(o Options) (small, large *Matrix, err error) {
	o = o.defaults()
	o.Latency = 100
	o.Class = SmallCache
	small, err = RunMatrix(workload.PaperNames(), []Label{W, WDSI}, o)
	if err != nil {
		return nil, nil, err
	}
	o.Class = LargeCache
	large, err = RunMatrix(workload.PaperNames(), []Label{W, WDSI}, o)
	return small, large, err
}

// MessageReduction returns the fractional reduction (0..1) in total and
// invalidation messages of W+DSI relative to W for one workload.
func MessageReduction(m *Matrix, w string) (total, inval float64) {
	base := m.Get(w, W).Messages
	dsi := m.Get(w, WDSI).Messages
	if bt := base.Total(); bt > 0 {
		total = 1 - float64(dsi.Total())/float64(bt)
	}
	if bi := base.Invalidation(); bi > 0 {
		inval = 1 - float64(dsi.Invalidation())/float64(bi)
	}
	return total, inval
}

// Table3 renders Table 3: DSI message reduction.
func Table3(o Options) (string, error) {
	small, large, err := Table3Matrices(o)
	if err != nil {
		return "", err
	}
	t := stats.Table{
		Title: "TABLE 3. DSI Message Reduction (W+DSI vs W, 100-cycle network)",
		Header: []string{"benchmark",
			"total " + SmallCache.String(), "total " + LargeCache.String(),
			"inval " + SmallCache.String(), "inval " + LargeCache.String()},
	}
	for _, w := range workload.PaperNames() {
		ts, is := MessageReduction(small, w)
		tl, il := MessageReduction(large, w)
		t.AddRow(w, stats.Pct(ts), stats.Pct(tl), stats.Pct(is), stats.Pct(il))
	}
	return t.Render(), nil
}
