package experiments

import (
	"strings"
	"testing"

	"dsisim/internal/faultinj"
	"dsisim/internal/workload"
)

// fast returns test-scale options so the whole experiment suite runs in CI
// time.
func fast() Options {
	return Options{Processors: 8, Scale: workload.ScaleTest}
}

func TestAllArtifactsRender(t *testing.T) {
	for _, name := range Artifacts() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := Run(name, fast())
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 {
				t.Fatal("empty report")
			}
			if name == ArtifactSweeps {
				// The sweep extension covers a representative subset.
				if !strings.Contains(out, "em3d") || !strings.Contains(out, "sparse") {
					t.Fatalf("sweep report missing workloads:\n%s", out)
				}
				return
			}
			if name == ArtifactTraffic {
				// The traffic extension covers the traffic-shaped generators.
				for _, w := range workload.TrafficNames() {
					if !strings.Contains(out, w) {
						t.Fatalf("traffic report missing %s:\n%s", w, out)
					}
				}
				return
			}
			for _, w := range workload.PaperNames() {
				if !strings.Contains(out, w) {
					t.Fatalf("report for %s missing %s:\n%s", name, w, out)
				}
			}
		})
	}
}

func TestUnknownArtifact(t *testing.T) {
	if _, err := Run("fig99", fast()); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m, err := RunMatrix([]string{"sparse"}, []Label{SC, V}, fast())
	if err != nil {
		t.Fatal(err)
	}
	if m.Get("sparse", SC).ExecTime == 0 {
		t.Fatal("empty cell")
	}
	if n := m.Normalized("sparse", SC, SC); n != 1.0 {
		t.Fatalf("self-normalization = %v", n)
	}
	if imp := m.Improvement("sparse", V, SC); imp <= -1 || imp >= 1 {
		t.Fatalf("improvement out of range: %v", imp)
	}
	tb := m.Table("t", SC)
	if len(tb.Rows) != 1 || tb.Rows[0][1] != "1.00" {
		t.Fatalf("table = %+v", tb)
	}
	bt := m.BreakdownTable("sparse")
	if len(bt.Rows) == 0 {
		t.Fatal("breakdown table empty")
	}
}

// TestRecoveryTable checks both sides of the recovery surface: a fault-free
// grid reports all-zero counters, and a faulty grid reports the retries the
// hardened protocol actually performed.
func TestRecoveryTable(t *testing.T) {
	clean, err := RunMatrix([]string{"sparse"}, []Label{SC}, fast())
	if err != nil {
		t.Fatal(err)
	}
	r := RecoveryOf(clean.Get("sparse", SC))
	if r != (Recovery{}) {
		t.Fatalf("fault-free run has recovery activity: %+v", r)
	}
	tb := clean.RecoveryTable("recovery")
	if len(tb.Rows) != 1 || tb.Rows[0][2] != "0" {
		t.Fatalf("table = %+v", tb)
	}

	o := fast()
	o.Faults = &faultinj.Config{Drop: 0.02, Seed: 11}
	faulty, err := RunMatrix([]string{"sparse"}, []Label{SC}, o)
	if err != nil {
		t.Fatal(err)
	}
	fr := RecoveryOf(faulty.Get("sparse", SC))
	if fr.Injected == 0 {
		t.Fatalf("fault plan injected nothing: %+v", fr)
	}
	if fr.Timeouts == 0 || fr.Retries == 0 {
		t.Fatalf("hardened protocol recorded no recovery: %+v", fr)
	}
	ft := faulty.RecoveryTable("recovery under faults")
	if ft.Rows[0][3] == "0" {
		t.Fatalf("table does not surface timeouts: %+v", ft.Rows[0])
	}
}

func TestCacheClassProperties(t *testing.T) {
	if SmallCache.Bytes() >= LargeCache.Bytes() {
		t.Fatal("cache classes inverted")
	}
	if SmallCache.String() == LargeCache.String() {
		t.Fatal("cache class names collide")
	}
}

func TestLabelConfigs(t *testing.T) {
	for _, l := range []Label{SC, W, S, V, VFIFO, WDSI} {
		cons, pol := l.Config()
		_ = cons
		switch l {
		case SC, W:
			if pol.Enabled() {
				t.Fatalf("%s has DSI enabled", l)
			}
		default:
			if !pol.Enabled() {
				t.Fatalf("%s has DSI disabled", l)
			}
		}
	}
}

func TestAblationRunners(t *testing.T) {
	o := fast()
	if _, err := RunFIFO("sparse", 8, o); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"never", "states", "versions", "always"} {
		if _, err := RunIdentifier("migratory", id, o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RunIdentifier("migratory", "bogus", o); err == nil {
		t.Fatal("unknown identifier accepted")
	}
	if _, err := RunUpgradeExemption("sparse", false, o); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWC("sparse", 4, true, o); err != nil {
		t.Fatal(err)
	}
}

// The directional claims that must hold even at test scale.
func TestSparseDSIDirection(t *testing.T) {
	m, err := RunMatrix([]string{"sparse"}, []Label{SC, V}, Options{Processors: 16, Scale: workload.ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	if m.Normalized("sparse", V, SC) >= 1.0 {
		t.Fatalf("V does not beat SC on sparse: %v", m.Normalized("sparse", V, SC))
	}
}

func TestTable3Reductions(t *testing.T) {
	small, _, err := Table3Matrices(fast())
	if err != nil {
		t.Fatal(err)
	}
	total, inval := MessageReduction(small, "sparse")
	if inval <= 0 {
		t.Fatalf("sparse invalidation reduction = %v, want positive", inval)
	}
	if total < -0.05 {
		t.Fatalf("sparse total message reduction strongly negative: %v", total)
	}
}
