package experiments

import (
	"reflect"
	"testing"

	"dsisim/internal/faultinj"
	"dsisim/internal/simcache"
	"dsisim/internal/workload"
)

// TestCacheEquivalence is the cache-correctness gate CI runs under -race:
// the same fault-injected matrix twice against one shared cache. The second
// pass must be served entirely from memory, and every cached cell must be
// deeply equal to its computed original — bit-identical results are the
// whole premise of content-addressed memoization over a deterministic
// simulator.
func TestCacheEquivalence(t *testing.T) {
	cache := simcache.New(64 << 20)
	o := Options{
		Processors: 8,
		Scale:      workload.ScaleTest,
		Faults:     &faultinj.Config{Drop: 0.02, Dup: 0.01, Delay: 0.05},
		Cache:      cache,
	}
	wls := []string{"em3d", "zipf"}
	labels := []Label{V, WDSI}

	first, err := RunMatrix(wls, labels, o)
	if err != nil {
		t.Fatal(err)
	}
	cold := cache.Stats()
	if want := int64(len(wls) * len(labels)); cold.Misses != want || cold.Hits != 0 {
		t.Fatalf("cold pass: %d misses / %d hits, want %d / 0", cold.Misses, cold.Hits, want)
	}

	second, err := RunMatrix(wls, labels, o)
	if err != nil {
		t.Fatal(err)
	}
	warm := cache.Stats()
	if got := warm.Hits - cold.Hits; got != cold.Misses {
		t.Fatalf("warm pass hit %d of %d cells", got, cold.Misses)
	}
	if warm.Misses != cold.Misses {
		t.Fatalf("warm pass recomputed: misses %d -> %d", cold.Misses, warm.Misses)
	}

	for _, w := range wls {
		for _, l := range labels {
			a, b := first.Get(w, l), second.Get(w, l)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: cached result differs from computed", w, l)
			}
		}
	}
}

// A cell that differs in any grid parameter must recompute, not hit.
func TestCacheKeySeparatesOptions(t *testing.T) {
	cache := simcache.New(64 << 20)
	base := Options{Processors: 8, Scale: workload.ScaleTest, Cache: cache}
	if _, err := RunOne("zipf", V, base); err != nil {
		t.Fatal(err)
	}
	for name, o := range map[string]Options{
		"latency": {Processors: 8, Scale: workload.ScaleTest, Latency: 200, Cache: cache},
		"class":   {Processors: 8, Scale: workload.ScaleTest, Class: LargeCache, Cache: cache},
		"procs":   {Processors: 4, Scale: workload.ScaleTest, Cache: cache},
	} {
		before := cache.Stats().Misses
		if _, err := RunOne("zipf", V, o); err != nil {
			t.Fatal(err)
		}
		if cache.Stats().Misses != before+1 {
			t.Fatalf("%s: option change did not miss the cache", name)
		}
	}
}
