// Package experiments defines the paper's evaluation: one driver per table
// and figure of §5, each running the required (workload × protocol × cache
// class × network latency) grid and rendering the same rows the paper
// reports. cmd/dsibench and the repository's bench_test.go are thin
// wrappers over this package.
package experiments

import (
	"errors"
	"fmt"
	"sync"

	"dsisim/internal/core"
	"dsisim/internal/event"
	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/proto"
	"dsisim/internal/simcache"
	"dsisim/internal/stats"
	"dsisim/internal/steal"
	"dsisim/internal/workload"
)

// CacheClass stands in for the paper's 256 KB / 2 MB cache pair. Input
// sizes are scaled down (DESIGN.md §4), so the classes are scaled with
// them: what matters is which side of each workload's working set the
// cache lands on (EXPERIMENTS.md records the calibration).
type CacheClass int

const (
	// SmallCache corresponds to the paper's 256 KB configuration.
	SmallCache CacheClass = iota
	// LargeCache corresponds to the paper's 2 MB configuration.
	LargeCache
)

func (c CacheClass) String() string {
	if c == SmallCache {
		return "256KB-class"
	}
	return "2MB-class"
}

// Bytes returns the simulated cache capacity of the class.
func (c CacheClass) Bytes() int {
	if c == SmallCache {
		return 32 * 1024
	}
	return 512 * 1024
}

// Label is a protocol label as used in the paper's figures.
type Label string

// The protocol labels of Figures 3-6.
const (
	SC    Label = "SC"
	W     Label = "W"
	S     Label = "S"
	V     Label = "V"
	VFIFO Label = "V-FIFO"
	WDSI  Label = "W+DSI"
)

// fifoEntries is the paper's FIFO capacity.
const fifoEntries = 64

// Config converts a label into a machine configuration.
func (l Label) Config() (proto.Consistency, core.Policy) {
	fifo := func() core.Mechanism { return core.NewFIFO(fifoEntries) }
	switch l {
	case SC:
		return proto.SC, core.Policy{}
	case W:
		return proto.WC, core.Policy{}
	case S:
		return proto.SC, core.Policy{Identifier: core.States{}, UpgradeExemption: true}
	case V:
		return proto.SC, core.Policy{Identifier: core.Versions{}, UpgradeExemption: true}
	case VFIFO:
		return proto.SC, core.Policy{Identifier: core.Versions{}, NewMechanism: fifo, UpgradeExemption: true}
	case WDSI:
		return proto.WC, core.Policy{Identifier: core.Versions{}, TearOff: true}
	default:
		panic(fmt.Sprintf("experiments: unknown label %q", l))
	}
}

// Options sets the grid-wide machine parameters.
type Options struct {
	Processors int            // default 32
	Scale      workload.Scale // default ScalePaper
	Latency    event.Time     // default 100
	Class      CacheClass
	// Faults, if set and non-trivial, installs the deterministic
	// fault-injection plan on every cell's interconnect (enabling the
	// hardened protocol), so grids can measure recovery overhead; see
	// RecoveryTable.
	Faults *faultinj.Config
	// Cache, if set, memoizes each cell's Result under its canonical
	// simcache key: a cell already simulated with identical parameters is
	// served from memory, bit-identical to the computed run (the simulator
	// is deterministic, so the key fully determines the Result). Repeated
	// grids — the service north-star's popular configurations — then cost
	// one simulation each. nil runs every cell.
	Cache *simcache.Cache
}

func (o Options) defaults() Options {
	if o.Processors == 0 {
		o.Processors = 32
	}
	if o.Latency == 0 {
		o.Latency = 100
	}
	return o
}

// workloadNew builds a fresh workload instance (sweeps.go helper).
func workloadNew(name string, s workload.Scale) (machine.Program, error) {
	return workload.New(name, s)
}

// machines recycles simulated machines across grid cells: every cell of a
// matrix shares one machine shape, so the structural allocations (event
// queue, network, block tables, cache arrays) are paid once per concurrent
// worker rather than once per cell.
var machines machine.Pool

// RunOne simulates one (workload, protocol) cell.
func RunOne(name string, label Label, o Options) (machine.Result, error) {
	return runOneIn(&machines, name, label, o)
}

// runOneIn is RunOne against a caller-owned machine pool. RunMatrix gives
// each work-stealing worker its own pool so cell turnover never contends on
// a shared free list and every worker reuses its own still-warm machine.
func runOneIn(pool *machine.Pool, name string, label Label, o Options) (machine.Result, error) {
	o = o.defaults()
	cons, pol := label.Config()
	cfg := machine.Config{
		Processors:     o.Processors,
		CacheBytes:     o.Class.Bytes(),
		CacheAssoc:     4,
		NetworkLatency: o.Latency,
		Consistency:    cons,
		Policy:         pol,
		Faults:         o.Faults,
	}
	// The workload build lives inside the compute closure so a cache hit
	// skips program construction along with the simulation. A workload
	// error surfaces as a failed Result, which the cache never stores.
	var wlErr error
	compute := func() machine.Result {
		prog, err := workload.New(name, o.Scale)
		if err != nil {
			wlErr = err
			return machine.Result{Errors: []string{err.Error()}}
		}
		m := pool.Get(cfg)
		res := m.Run(prog)
		pool.Put(m)
		return res
	}
	key := simcache.RequestOf(name, o.Scale.String(), string(label), cfg).Key()
	res, _ := o.Cache.Do(key, compute)
	if wlErr != nil {
		return machine.Result{}, wlErr
	}
	if res.Failed() {
		return res, fmt.Errorf("%s/%s (%v, %d-cycle net): %s", name, label, o.Class, o.Latency, res.Errors[0])
	}
	return res, nil
}

// Matrix holds a (workload × protocol) grid of results for one Options.
type Matrix struct {
	Opt       Options
	Workloads []string
	Labels    []Label
	cells     map[string]map[Label]machine.Result
}

// RunMatrix simulates the full grid. Cells are independent simulations
// (each builds its own machine and workload instance), so they run
// concurrently on a work-stealing runner (internal/steal): the grid is
// split into contiguous chunks, one per worker, and a worker that drains
// its chunk steals half of a loaded victim's remainder — so a few slow
// cells (large workload × expensive protocol) no longer serialize the tail
// the way the old flat semaphore did. Each worker owns a private machine
// pool, so machine reuse never contends across workers. Each cell remains
// bit-deterministic, and the grid's results are independent of completion
// order (each cell writes only its own slot). For parallelism inside a
// single cell, set Config.Workers >= 2 on the machine instead (the
// deterministic parallel delivery engine).
func RunMatrix(workloads []string, labels []Label, o Options) (*Matrix, error) {
	o = o.defaults()
	m := &Matrix{Opt: o, Workloads: workloads, Labels: labels,
		cells: make(map[string]map[Label]machine.Result)}
	for _, w := range workloads {
		m.cells[w] = make(map[Label]machine.Result)
	}
	type cell struct {
		w string
		l Label
	}
	var todo []cell
	for _, w := range workloads {
		for _, l := range labels {
			todo = append(todo, cell{w, l})
		}
	}
	var (
		mu   sync.Mutex
		errs = make([]error, len(todo)) // one slot per cell, in grid order
	)
	runner := steal.New(len(todo), 0)
	pools := make([]machine.Pool, runner.Workers())
	runner.Run(func(worker, i int) {
		c := todo[i]
		res, err := runOneIn(&pools[worker], c.w, c.l, o)
		mu.Lock()
		defer mu.Unlock()
		errs[i] = err
		m.cells[c.w][c.l] = res
	})
	// Report every failed cell, not just the first: a grid-wide pathology
	// (one workload failing under every protocol, say) should be visible in
	// one error. The matrix is still returned so callers can render the
	// cells that did succeed; rendering skips failed cells.
	if err := errors.Join(errs...); err != nil {
		return m, err
	}
	return m, nil
}

// ok reports whether the (w, l) cell ran and succeeded.
func (m *Matrix) ok(w string, l Label) bool {
	res, present := m.cells[w][l]
	return present && !res.Failed()
}

// Get returns the cell for (workload, label).
func (m *Matrix) Get(w string, l Label) machine.Result { return m.cells[w][l] }

// Normalized returns label's execution time divided by base's, or 0 when
// either cell failed.
func (m *Matrix) Normalized(w string, l, base Label) float64 {
	if !m.ok(w, l) || !m.ok(w, base) {
		return 0
	}
	b := m.cells[w][base].ExecTime
	if b == 0 {
		return 0
	}
	return float64(m.cells[w][l].ExecTime) / float64(b)
}

// Improvement returns the percent execution-time reduction of l vs base.
func (m *Matrix) Improvement(w string, l, base Label) float64 {
	return 1 - m.Normalized(w, l, base)
}

// Table renders normalized execution times against base.
func (m *Matrix) Table(title string, base Label) stats.Table {
	t := stats.Table{Title: title, Header: []string{"benchmark"}}
	for _, l := range m.Labels {
		t.Header = append(t.Header, string(l))
	}
	for _, w := range m.Workloads {
		row := []string{w}
		for _, l := range m.Labels {
			if !m.ok(w, l) {
				row = append(row, "-") // cell's simulation failed
				continue
			}
			row = append(row, stats.Norm(m.Normalized(w, l, base)))
		}
		t.AddRow(row...)
	}
	return t
}

// Recovery aggregates one run's retry/NACK/fault-recovery counters across
// all nodes — the robustness story of a cell in one row. All fields are
// zero for a run without faults and without the hardened protocol.
type Recovery struct {
	Timeouts int64 // retry timers fired (cache + directory side)
	Retries  int64 // requests, probes, and Inv/Recalls retransmitted
	Nacks    int64 // requests refused by an overloaded directory
	Replays  int64 // grants re-sent from directory state for lost replies
	Strays   int64 // duplicate/stale messages deduplicated or tolerated
	Injected int64 // messages the fault plan dropped, duplicated, or delayed
}

// RecoveryOf sums res's per-node recovery counters.
func RecoveryOf(res machine.Result) Recovery {
	var r Recovery
	for _, cs := range res.Cache {
		r.Timeouts += cs.Timeouts
		r.Retries += cs.Retries
		r.Nacks += cs.NacksRecv
		r.Strays += cs.StraysIgnored
	}
	for _, ds := range res.Dir {
		r.Timeouts += ds.Timeouts
		r.Retries += ds.RetriesSent
		r.Replays += ds.Replays
		r.Strays += ds.StrayAcks + ds.DupRequests
	}
	r.Injected = res.Faults.Dropped + res.Faults.Duplicated + res.Faults.Delayed
	return r
}

// RecoveryTable renders the grid's fault-recovery counters: one row per
// (workload, protocol) cell. For a fault-free grid every count is zero —
// the table then documents that no recovery machinery engaged.
func (m *Matrix) RecoveryTable(title string) stats.Table {
	t := stats.Table{
		Title:  title,
		Header: []string{"benchmark", "protocol", "faults", "timeouts", "retries", "nacks", "replays", "strays"},
	}
	for _, w := range m.Workloads {
		for _, l := range m.Labels {
			if !m.ok(w, l) {
				t.AddRow(w, string(l), "-", "-", "-", "-", "-", "-")
				continue
			}
			r := RecoveryOf(m.cells[w][l])
			t.AddRow(w, string(l),
				fmt.Sprint(r.Injected), fmt.Sprint(r.Timeouts), fmt.Sprint(r.Retries),
				fmt.Sprint(r.Nacks), fmt.Sprint(r.Replays), fmt.Sprint(r.Strays))
		}
	}
	return t
}

// chartSegments maps breakdown categories to stacked-bar runes, grouping
// the paper's Figure 3 legend: computation, synchronization, read stalls,
// write stalls, write-buffer stalls, and self-invalidation time.
var chartSegments = []struct {
	r    rune
	name string
	cats []stats.Category
}{
	{'#', "compute", []stats.Category{stats.Compute}},
	{'%', "synch", []stats.Category{stats.Sync}},
	{'-', "read stall", []stats.Category{stats.ReadInval, stats.ReadOther}},
	{'=', "write stall", []stats.Category{stats.WriteInval, stats.WriteOther}},
	{'~', "write buffer", []stats.Category{stats.SyncWB, stats.ReadWB, stats.WBFull}},
	{'!', "dsi", []stats.Category{stats.DSIStall}},
}

// Chart renders the matrix as grouped stacked bars — the text analogue of
// the paper's Figure 3/4/5 plots. Bar length is execution time normalized
// to base; segments show where the cycles went.
func (m *Matrix) Chart(title string, base Label) stats.BarChart {
	c := stats.BarChart{Title: title, Width: 50, Scale: 1.0}
	for _, seg := range chartSegments {
		c.Legend = append(c.Legend, stats.LegendEntry{Rune: seg.r, Name: seg.name})
	}
	for _, w := range m.Workloads {
		g := stats.BarGroup{Label: w}
		for _, l := range m.Labels {
			if !m.ok(w, l) {
				continue // failed cell: no bar
			}
			res := m.cells[w][l]
			total := float64(res.Breakdown.Total())
			bar := stats.Bar{Label: string(l), Value: m.Normalized(w, l, base)}
			if total > 0 {
				for _, seg := range chartSegments {
					var cyc int64
					for _, cat := range seg.cats {
						cyc += res.Breakdown.Cycles[cat]
					}
					if cyc > 0 {
						bar.Segments = append(bar.Segments, stats.Segment{Rune: seg.r, Frac: float64(cyc) / total})
					}
				}
			}
			g.Bars = append(g.Bars, bar)
		}
		c.Groups = append(c.Groups, g)
	}
	return c
}

// BreakdownTable renders the per-category execution-time shares of each
// protocol for one workload — the stacked bars of Figure 3 as rows.
func (m *Matrix) BreakdownTable(w string) stats.Table {
	t := stats.Table{
		Title:  fmt.Sprintf("%s: cycle breakdown (fraction of SC total)", w),
		Header: []string{"category"},
	}
	for _, l := range m.Labels {
		t.Header = append(t.Header, string(l))
	}
	bb := m.cells[w][m.Labels[0]].Breakdown
	base := float64(bb.Total())
	if base == 0 {
		base = 1
	}
	for _, c := range stats.Categories() {
		row := []string{c.String()}
		nonzero := false
		for _, l := range m.Labels {
			if !m.ok(w, l) {
				row = append(row, "-")
				continue
			}
			v := float64(m.cells[w][l].Breakdown.Cycles[c]) / base
			if v != 0 {
				nonzero = true
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		if nonzero {
			t.AddRow(row...)
		}
	}
	return t
}
