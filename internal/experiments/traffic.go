package experiments

import (
	"fmt"
	"strings"

	"dsisim/internal/faultinj"
	"dsisim/internal/machine"
	"dsisim/internal/stats"
	"dsisim/internal/workload"
)

// The traffic drivers evaluate the production-shaped generators
// (docs/WORKLOADS.md): the zipfian hot-writer workload, the
// producer-consumer ring, the lock convoy, and open-loop arrival. They
// answer the question the paper's scientific kernels cannot: how DSI
// behaves under the skewed, serving-stack sharing patterns where hybrid
// update/invalidate protocols are known to flip winners.

// TrafficProtocols are the columns of the traffic grid: base protocols plus
// the two main DSI arms.
var TrafficProtocols = []Label{SC, W, V, WDSI}

// TrafficGrid runs the traffic-shaped generators against TrafficProtocols.
func TrafficGrid(o Options) (*Matrix, error) {
	return RunMatrix(workload.TrafficNames(), TrafficProtocols, o)
}

// ZipfSkewSweep runs the zipf generator under SC and W+DSI across
// hot-writer fractions, reporting W+DSI's improvement at each point — the
// regime sweep where protocol choice flips as write sharing grows.
func ZipfSkewSweep(fracs []float64, o Options) (stats.Table, error) {
	o = o.defaults()
	t := stats.Table{
		Title:  "zipf: W+DSI improvement vs SC across hot-writer fraction",
		Header: []string{"hot-writer frac", "writers/32", "SC cycles", "W+DSI cycles", "improvement"},
	}
	for _, f := range fracs {
		p := workload.ZipfScaled(o.Scale)
		p.HotWriterFrac = f
		writers := int(f*float64(o.Processors) + 0.5)
		if writers < 1 {
			writers = 1
		}
		var res [2]machine.Result
		for i, l := range []Label{SC, WDSI} {
			cons, pol := l.Config()
			cfg := machine.Config{
				Processors:     o.Processors,
				CacheBytes:     o.Class.Bytes(),
				CacheAssoc:     4,
				NetworkLatency: o.Latency,
				Consistency:    cons,
				Policy:         pol,
				Faults:         o.Faults,
			}
			m := machines.Get(cfg)
			res[i] = m.Run(workload.NewZipf(p))
			machines.Put(m)
			if res[i].Failed() {
				return t, fmt.Errorf("zipf frac %.3f under %s: %s", f, l, res[i].Errors[0])
			}
		}
		imp := 1 - float64(res[1].ExecTime)/float64(res[0].ExecTime)
		t.AddRow(fmt.Sprintf("%.3f", f), fmt.Sprintf("%d/%d", writers, o.Processors),
			fmt.Sprint(res[0].ExecTime), fmt.Sprint(res[1].ExecTime), stats.Pct(imp))
	}
	return t, nil
}

// DefaultSkewFracs are the hot-writer fractions of the committed skew sweep.
var DefaultSkewFracs = []float64{0.03125, 0.0625, 0.125, 0.25, 0.5}

// Traffic renders the traffic-workloads artifact: the clean grid, the same
// grid under a lossy fault plan with its recovery counters, and the
// hot-writer skew sweep.
func Traffic(o Options) (string, error) {
	o = o.defaults()
	var sb strings.Builder
	sb.WriteString("Traffic-shaped workloads (docs/WORKLOADS.md)\n")
	sb.WriteString(fmt.Sprintf("(%d processors, %v cache, %d-cycle network)\n\n", o.Processors, o.Class, o.Latency))

	m, err := TrafficGrid(o)
	if err != nil {
		return "", err
	}
	sb.WriteString(m.Table("execution time normalized to SC", SC).Render())
	sb.WriteByte('\n')
	sb.WriteString("Total messages per protocol:\n")
	mt := stats.Table{Header: append([]string{"benchmark"}, labelStrings(TrafficProtocols)...)}
	for _, w := range m.Workloads {
		row := []string{w}
		for _, l := range m.Labels {
			row = append(row, fmt.Sprint(m.Get(w, l).Messages.Total()))
		}
		mt.AddRow(row...)
	}
	sb.WriteString(mt.Render())
	sb.WriteByte('\n')

	// The same grid under a lossy interconnect: every cell must still pass
	// its kernel asserts and audit, and the Recovery counters show what the
	// hardened protocol paid to get there.
	fo := o
	fo.Faults = &FaultConfigLossy
	fm, err := TrafficGrid(fo)
	if err != nil {
		return "", err
	}
	sb.WriteString(fm.RecoveryTable("fault recovery under drop=2% dup=1% delay=5% (seed 0xfa17)").Render())
	sb.WriteByte('\n')

	sw, err := ZipfSkewSweep(DefaultSkewFracs, o)
	if err != nil {
		return "", err
	}
	sb.WriteString(sw.Render())
	return sb.String(), nil
}

// FaultConfigLossy is the lossy plan used by the traffic artifact's faulted
// grid (mirrors the fuzzer's "lossy" plan, fixed seed for replayability).
var FaultConfigLossy = faultinj.Config{Seed: 0xfa17, Drop: 0.02, Dup: 0.01, Delay: 0.05}

// labelStrings converts labels for table headers.
func labelStrings(ls []Label) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = string(l)
	}
	return out
}
