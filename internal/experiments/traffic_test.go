package experiments

import (
	"testing"

	"dsisim/internal/workload"
)

// The traffic grid must run every generator × protocol cell clean, and the
// faulted variant must actually inject (and recover from) faults so the
// Recovery counters in the committed table mean something.
func TestTrafficGrid(t *testing.T) {
	m, err := TrafficGrid(fast())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workload.TrafficNames() {
		for _, l := range TrafficProtocols {
			if m.Get(w, l).ExecTime == 0 {
				t.Fatalf("empty cell %s/%s", w, l)
			}
			if r := RecoveryOf(m.Get(w, l)); r.Injected != 0 {
				t.Fatalf("fault-free cell %s/%s reports %d injected faults", w, l, r.Injected)
			}
		}
	}

	fo := fast()
	fc := FaultConfigLossy
	fo.Faults = &fc
	fm, err := TrafficGrid(fo)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workload.TrafficNames() {
		for _, l := range TrafficProtocols {
			if r := RecoveryOf(fm.Get(w, l)); r.Injected == 0 {
				t.Fatalf("faulted cell %s/%s injected nothing", w, l)
			}
		}
	}
}

// The skew sweep must cover every requested fraction and keep both arms
// passing as the writer share grows.
func TestZipfSkewSweep(t *testing.T) {
	tab, err := ZipfSkewSweep([]float64{0.125, 0.5}, fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("sweep has %d rows, want 2", len(tab.Rows))
	}
}
