package experiments

import (
	"fmt"
	"strings"

	"dsisim/internal/event"
	"dsisim/internal/machine"
	"dsisim/internal/stats"
)

// The sweep drivers quantify the trends the paper argues qualitatively:
// DSI's benefit grows with network latency ("as processor cycle times
// continue to decrease relative to network latencies") and with cache size
// ("systems using main memory as a cache ... may benefit significantly").

// LatencySweep runs one workload under SC and V across network latencies
// and reports V's improvement at each point.
func LatencySweep(name string, latencies []event.Time, o Options) (stats.Table, error) {
	t := stats.Table{
		Title:  fmt.Sprintf("%s: DSI (V) improvement vs SC across network latency", name),
		Header: []string{"latency", "SC cycles", "V cycles", "improvement"},
	}
	for _, lat := range latencies {
		oo := o.defaults()
		oo.Latency = lat
		sc, err := RunOne(name, SC, oo)
		if err != nil {
			return t, err
		}
		v, err := RunOne(name, V, oo)
		if err != nil {
			return t, err
		}
		imp := 1 - float64(v.ExecTime)/float64(sc.ExecTime)
		t.AddRow(fmt.Sprint(lat), fmt.Sprint(sc.ExecTime), fmt.Sprint(v.ExecTime), stats.Pct(imp))
	}
	return t, nil
}

// CacheSweep runs one workload under SC and V across cache sizes.
func CacheSweep(name string, sizes []int, o Options) (stats.Table, error) {
	t := stats.Table{
		Title:  fmt.Sprintf("%s: DSI (V) improvement vs SC across cache size", name),
		Header: []string{"cache bytes", "SC cycles", "V cycles", "improvement"},
	}
	for _, size := range sizes {
		res, err := runPair(name, o, size, 0)
		if err != nil {
			return t, err
		}
		imp := 1 - float64(res[1].ExecTime)/float64(res[0].ExecTime)
		t.AddRow(fmt.Sprint(size), fmt.Sprint(res[0].ExecTime), fmt.Sprint(res[1].ExecTime), stats.Pct(imp))
	}
	return t, nil
}

// ProcSweep runs one workload under SC and V across machine sizes.
func ProcSweep(name string, procs []int, o Options) (stats.Table, error) {
	t := stats.Table{
		Title:  fmt.Sprintf("%s: DSI (V) improvement vs SC across processors", name),
		Header: []string{"processors", "SC cycles", "V cycles", "improvement"},
	}
	for _, n := range procs {
		res, err := runPair(name, o, 0, n)
		if err != nil {
			return t, err
		}
		imp := 1 - float64(res[1].ExecTime)/float64(res[0].ExecTime)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(res[0].ExecTime), fmt.Sprint(res[1].ExecTime), stats.Pct(imp))
	}
	return t, nil
}

// runPair runs (SC, V) with optional cache-size / processor overrides.
func runPair(name string, o Options, cacheBytes, procs int) ([2]machine.Result, error) {
	var out [2]machine.Result
	oo := o.defaults()
	if procs > 0 {
		oo.Processors = procs
	}
	for i, l := range []Label{SC, V} {
		cons, pol := l.Config()
		cfg := machine.Config{
			Processors:     oo.Processors,
			CacheBytes:     oo.Class.Bytes(),
			CacheAssoc:     4,
			NetworkLatency: oo.Latency,
			Consistency:    cons,
			Policy:         pol,
		}
		if cacheBytes > 0 {
			cfg.CacheBytes = cacheBytes
		}
		prog, err := newProg(name, oo)
		if err != nil {
			return out, err
		}
		res := machine.New(cfg).Run(prog)
		if res.Failed() {
			return out, fmt.Errorf("%s/%s: %s", name, l, res.Errors[0])
		}
		out[i] = res
	}
	return out, nil
}

func newProg(name string, o Options) (machine.Program, error) {
	return workloadNew(name, o.Scale)
}

// Sweeps renders the standard sensitivity report: em3d and sparse across
// latency; tomcatv across cache size; sparse across machine size.
func Sweeps(o Options) (string, error) {
	// Sweep trends are about coherence overhead, so run them on the cache
	// class that holds the working sets (the paper's 2 MB analogue).
	o.Class = LargeCache
	var sb strings.Builder
	for _, name := range []string{"em3d", "sparse"} {
		t, err := LatencySweep(name, []event.Time{50, 100, 300, 1000}, o)
		if err != nil {
			return "", err
		}
		sb.WriteString(t.Render())
		sb.WriteByte('\n')
	}
	ct, err := CacheSweep("tomcatv", []int{16 * 1024, 32 * 1024, 128 * 1024, 512 * 1024}, o)
	if err != nil {
		return "", err
	}
	sb.WriteString(ct.Render())
	sb.WriteByte('\n')
	pt, err := ProcSweep("sparse", []int{8, 16, 32}, o)
	if err != nil {
		return "", err
	}
	sb.WriteString(pt.Render())
	return sb.String(), nil
}
