package stats

import (
	"fmt"
	"strings"
)

// BarChart renders grouped horizontal bars as text — the closest a terminal
// gets to the paper's stacked-bar figures. Bars within a group share a
// scale; segment runes encode the stacked categories.
type BarChart struct {
	Title string
	// Width is the number of character cells representing Scale.
	Width int
	// Scale is the value one full width represents (e.g. 1.0 for
	// normalized execution time).
	Scale  float64
	Groups []BarGroup
	// Legend maps segment runes to names, rendered below the chart.
	Legend []LegendEntry
}

// BarGroup is one cluster of bars (one benchmark).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// Bar is one bar with an optional stacked composition. Segment fractions
// are relative to Value; any remainder is drawn with the last segment's
// rune (or '#' when there are no segments).
type Bar struct {
	Label    string
	Value    float64
	Segments []Segment
}

// Segment is one stacked slice of a bar.
type Segment struct {
	Rune rune
	Frac float64
}

// LegendEntry names one segment rune.
type LegendEntry struct {
	Rune rune
	Name string
}

// Render draws the chart.
func (c BarChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	labelW := 0
	for _, g := range c.Groups {
		for _, b := range g.Bars {
			if len(b.Label) > labelW {
				labelW = len(b.Label)
			}
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for _, g := range c.Groups {
		sb.WriteString(g.Label)
		sb.WriteByte('\n')
		for _, b := range g.Bars {
			cells := int(b.Value/scale*float64(width) + 0.5)
			fmt.Fprintf(&sb, "  %-*s |%s| %.2f\n", labelW, b.Label, renderBar(b, cells), b.Value)
		}
	}
	for _, l := range c.Legend {
		fmt.Fprintf(&sb, "  %c %s", l.Rune, l.Name)
	}
	if len(c.Legend) > 0 {
		sb.WriteByte('\n')
	}
	return sb.String()
}

func renderBar(b Bar, cells int) string {
	if cells <= 0 {
		return ""
	}
	out := make([]rune, 0, cells)
	for _, seg := range b.Segments {
		n := int(seg.Frac*float64(cells) + 0.5)
		for i := 0; i < n && len(out) < cells; i++ {
			out = append(out, seg.Rune)
		}
	}
	fill := '#'
	if n := len(b.Segments); n > 0 {
		fill = b.Segments[n-1].Rune
	}
	for len(out) < cells {
		out = append(out, fill)
	}
	return string(out)
}
