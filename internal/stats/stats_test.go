package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakdownAddTotal(t *testing.T) {
	var b Breakdown
	b.Add(Compute, 100)
	b.Add(Sync, 30)
	b.Add(Compute, 50)
	if b.Total() != 180 {
		t.Fatalf("total = %d, want 180", b.Total())
	}
	if b.Cycles[Compute] != 150 {
		t.Fatalf("compute = %d, want 150", b.Cycles[Compute])
	}
}

func TestBreakdownNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative charge did not panic")
		}
	}()
	var b Breakdown
	b.Add(Compute, -1)
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(ReadInval, 10)
	b.Add(ReadInval, 5)
	b.Add(WriteOther, 7)
	a.Merge(&b)
	if a.Cycles[ReadInval] != 15 || a.Cycles[WriteOther] != 7 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestShare(t *testing.T) {
	var b Breakdown
	if b.Share(Compute) != 0 {
		t.Fatal("empty breakdown share not 0")
	}
	b.Add(Compute, 75)
	b.Add(Sync, 25)
	if got := b.Share(Compute); got != 0.75 {
		t.Fatalf("share = %v, want 0.75", got)
	}
}

func TestMergeCommutesProperty(t *testing.T) {
	f := func(xs, ys [NumCategories]uint16) bool {
		var a, b, c, d Breakdown
		for i := 0; i < int(NumCategories); i++ {
			a.Add(Category(i), int64(xs[i]))
			c.Add(Category(i), int64(xs[i]))
			b.Add(Category(i), int64(ys[i]))
			d.Add(Category(i), int64(ys[i]))
		}
		a.Merge(&b) // a = x+y
		d.Merge(&c) // d = y+x
		return a == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryNames(t *testing.T) {
	for _, c := range Categories() {
		if strings.HasPrefix(c.String(), "Category(") {
			t.Fatalf("category %d has no name", int(c))
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Fatal("out-of-range category not formatted defensively")
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	if b.String() != "(empty)" {
		t.Fatalf("empty string = %q", b.String())
	}
	b.Add(Compute, 5)
	if got := b.String(); got != "compute=5" {
		t.Fatalf("string = %q", got)
	}
}

func TestTableRenderAligns(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"name", "v"}}
	tab.AddRow("longlonglong", "1")
	tab.AddRow("x") // short row padded
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "longlonglong  1") {
		t.Fatalf("row = %q", lines[3])
	}
	// All data lines same width for first column.
	if len(lines[3][:12]) != len("longlonglong") {
		t.Fatal("column not padded")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.41) != "41%" {
		t.Fatalf("Pct = %q", Pct(0.41))
	}
	if Norm(0.8449) != "0.84" {
		t.Fatalf("Norm = %q", Norm(0.8449))
	}
}
