package stats

import (
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := BarChart{
		Title: "demo",
		Width: 10,
		Scale: 1.0,
		Groups: []BarGroup{{
			Label: "g1",
			Bars: []Bar{
				{Label: "full", Value: 1.0},
				{Label: "half", Value: 0.5},
			},
		}},
		Legend: []LegendEntry{{'#', "time"}},
	}
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "|##########| 1.00") {
		t.Fatalf("full bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "|#####| 0.50") {
		t.Fatalf("half bar wrong: %q", lines[3])
	}
	if !strings.Contains(lines[4], "# time") {
		t.Fatalf("legend wrong: %q", lines[4])
	}
}

func TestBarChartSegments(t *testing.T) {
	c := BarChart{
		Width: 10, Scale: 1.0,
		Groups: []BarGroup{{
			Label: "g",
			Bars: []Bar{{
				Label: "b", Value: 1.0,
				Segments: []Segment{{'=', 0.5}, {'.', 0.5}},
			}},
		}},
	}
	out := c.Render()
	if !strings.Contains(out, "|=====.....|") {
		t.Fatalf("segments wrong:\n%s", out)
	}
}

func TestBarChartZeroAndDefaults(t *testing.T) {
	c := BarChart{Groups: []BarGroup{{Label: "g", Bars: []Bar{{Label: "z", Value: 0}}}}}
	out := c.Render()
	if !strings.Contains(out, "|| 0.00") {
		t.Fatalf("zero bar wrong:\n%s", out)
	}
}

func TestBarChartLabelAlignment(t *testing.T) {
	c := BarChart{Width: 4, Scale: 1,
		Groups: []BarGroup{{Label: "g", Bars: []Bar{
			{Label: "x", Value: 0.5},
			{Label: "longer", Value: 0.5},
		}}}}
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	if strings.Index(lines[1], "|") != strings.Index(lines[2], "|") {
		t.Fatalf("bars not aligned:\n%s", c.Render())
	}
}
