// Package stats defines the measurement vocabulary of the simulator: the
// execution-time breakdown of Figure 3 of the paper, aggregate counters, and
// plain-text table rendering used by the benchmark harness.
package stats

import (
	"fmt"
	"strings"
)

// Category labels one slice of a processor's execution time. The categories
// mirror Figure 3: computation, synchronization, read/write invalidation
// stall (time the directory spent invalidating outstanding copies on the
// request's behalf), read/write other stall (the rest of the miss latency),
// the three weak-consistency write-buffer stalls, and the time spent waiting
// for self-invalidation to complete at synchronization points.
type Category int

const (
	Compute Category = iota
	Sync
	ReadInval
	ReadOther
	WriteInval
	WriteOther
	SyncWB // stalled at a sync point draining the write buffer
	ReadWB // read stalled behind an outstanding write-buffer miss
	WBFull // stalled because the write buffer was full
	DSIStall
	NumCategories
)

var categoryNames = [NumCategories]string{
	"compute", "synch", "read-inv", "read-other", "write-inv", "write-other",
	"synch-wb", "read-wb", "wb-full", "dsi",
}

func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all categories in display order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Breakdown accumulates cycles per category. The zero value is empty.
type Breakdown struct {
	Cycles [NumCategories]int64
}

// Add charges n cycles to category c.
func (b *Breakdown) Add(c Category, n int64) {
	if n < 0 {
		panic("stats: negative cycle charge")
	}
	b.Cycles[c] += n
}

// Total returns the sum over all categories.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, v := range b.Cycles {
		t += v
	}
	return t
}

// Merge adds o into b.
func (b *Breakdown) Merge(o *Breakdown) {
	for i, v := range o.Cycles {
		b.Cycles[i] += v
	}
}

// Share returns category c's fraction of the total, or 0 for an empty
// breakdown.
func (b *Breakdown) Share(c Category) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Cycles[c]) / float64(t)
}

func (b *Breakdown) String() string {
	var sb strings.Builder
	for c, v := range b.Cycles {
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", Category(c), v)
	}
	if sb.Len() == 0 {
		return "(empty)"
	}
	return sb.String()
}

// Counter is a named monotonically increasing count.
type Counter struct {
	Name  string
	Value int64
}

// Kernel reports event-kernel activity for one simulation run: how hard the
// discrete-event scheduler worked and how much of the hot path stayed on
// the allocation-free typed/pooled paths. cmd/dsibench -benchjson records
// it so the simulator's own performance is machine-checkable over time.
type Kernel struct {
	// Events is the number of events executed.
	Events uint64
	// Scheduled is the number of events enqueued.
	Scheduled uint64
	// PeakQueue is the maximum number of pending events observed.
	PeakQueue int
	// TypedEvents counts events scheduled through the typed path — each one
	// a closure allocation avoided.
	TypedEvents uint64
	// PooledDeliveries counts network deliveries carried by pooled records
	// — each one a per-send message-capture closure avoided.
	PooledDeliveries uint64
}

// AllocsAvoided sums the per-event allocations the kernel's typed and
// pooled paths avoided relative to a closure-per-event scheduler.
func (k Kernel) AllocsAvoided() uint64 { return k.TypedEvents + k.PooledDeliveries }

// Table renders aligned plain-text tables, the output format of
// cmd/dsibench and EXPERIMENTS.md.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render returns the table as text with columns padded to equal width.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	if len(t.Header) > 1 {
		total = len(t.Header)*2 - 2
	}
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Pct formats a ratio as a percentage string ("41%").
func Pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// Norm formats a normalized value ("0.84").
func Norm(x float64) string { return fmt.Sprintf("%.2f", x) }
