package stats

import (
	"strings"
	"testing"
)

// TestTableRenderNoRows: a header-only table still renders the header and
// separator so harness output stays parseable when a run produced no data.
func TestTableRenderNoRows(t *testing.T) {
	tb := Table{Title: "empty run", Header: []string{"name", "cycles"}}
	got := tb.Render()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want title+header+separator, got %d lines:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "cycles") {
		t.Fatalf("header line mangled: %q", lines[1])
	}
	if strings.Trim(lines[2], "-") != "" {
		t.Fatalf("separator line mangled: %q", lines[2])
	}
}

// TestTableRenderEmptyCells: AddRow with no cells pads to the full column
// count, keeping alignment for rows where every value is blank.
func TestTableRenderEmptyCells(t *testing.T) {
	tb := Table{Header: []string{"workload", "base", "dsi"}}
	tb.AddRow("ocean", "1.00", "0.92")
	tb.AddRow()
	tb.AddRow("fft")
	got := tb.Render()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header+separator+3 rows, got %d lines:\n%s", len(lines), got)
	}
	sep := len(lines[1])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > sep {
			t.Fatalf("line %d wider than separator (%d > %d): %q", i, len(l), sep, l)
		}
	}
	if strings.TrimSpace(lines[3]) != "" {
		t.Fatalf("empty row rendered non-blank: %q", lines[3])
	}
	if strings.TrimSpace(lines[4]) != "fft" {
		t.Fatalf("short row mangled: %q", lines[4])
	}
}

// TestTableRenderZeroValue: the zero Table must render without panicking
// (the separator width math must not go negative).
func TestTableRenderZeroValue(t *testing.T) {
	var tb Table
	got := tb.Render()
	if got != "\n\n" {
		t.Fatalf("zero table rendered %q", got)
	}
}
