// Package directory implements the full-map directory storage of the
// Dir_nNB-style protocol the paper extends: per-block entries holding the
// base three states (Idle, Shared, Exclusive), the four additional DSI
// states (Shared_SI, Idle_X, Idle_S, Idle_SI), the 4-bit version number and
// 2-bit shared-copy shift register of the version-number scheme, and the
// tear-off tracking bit.
//
// The package is pure state: transitions are driven by the protocol engines
// in internal/proto, and the self-invalidation decisions are made by the
// policies in internal/core.
package directory

import (
	"fmt"
	"math/bits"

	"dsisim/internal/blockmap"
	"dsisim/internal/mem"
)

// NodeSet is a full-map sharer bit vector (up to 64 nodes, the paper
// simulates 32).
type NodeSet uint64

// Add returns s with node present.
func (s NodeSet) Add(node int) NodeSet { return s | 1<<uint(node) }

// Remove returns s without node.
func (s NodeSet) Remove(node int) NodeSet { return s &^ (1 << uint(node)) }

// Has reports whether node is present.
func (s NodeSet) Has(node int) bool { return s&(1<<uint(node)) != 0 }

// Count returns the number of nodes present.
func (s NodeSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set is empty.
func (s NodeSet) Empty() bool { return s == 0 }

// Only reports whether node is the sole member.
func (s NodeSet) Only(node int) bool { return s == 1<<uint(node) }

// ForEach calls fn for each member in ascending order.
func (s NodeSet) ForEach(fn func(node int)) {
	for v := uint64(s); v != 0; {
		n := bits.TrailingZeros64(v)
		fn(n)
		v &^= 1 << uint(n)
	}
}

func (s NodeSet) String() string {
	out := "{"
	first := true
	s.ForEach(func(n int) {
		if !first {
			out += ","
		}
		out += fmt.Sprint(n)
		first = false
	})
	return out + "}"
}

// State is a directory block state. The base protocol uses the first three;
// the additional-states DSI scheme uses all seven.
type State int

const (
	// Idle: no outstanding copies.
	Idle State = iota
	// Shared: one or more outstanding shared-readable copies.
	Shared
	// Exclusive: exactly one outstanding readable/writable copy.
	Exclusive
	// SharedSI: outstanding shared copies that were all handed out marked
	// for self-invalidation (entered when a read request is served from
	// Exclusive).
	SharedSI
	// IdleX: idle, reached from Exclusive by self-invalidation/writeback.
	IdleX
	// IdleS: idle, reached from Shared by self-invalidation.
	IdleS
	// IdleSI: idle, reached by cache replacement of a self-invalidate block.
	IdleSI
)

var stateNames = [...]string{"Idle", "Shared", "Exclusive", "Shared_SI", "Idle_X", "Idle_S", "Idle_SI"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// IsIdle reports whether the state has no outstanding tracked copies.
func (s State) IsIdle() bool { return s == Idle || s == IdleX || s == IdleS || s == IdleSI }

// IsShared reports whether the state has outstanding shared tracked copies.
func (s State) IsShared() bool { return s == Shared || s == SharedSI }

// VerBits is the width of the version number; the paper evaluates 4 bits.
const VerBits = 4

// VerMask masks a version to VerBits.
const VerMask = (1 << VerBits) - 1

// Entry is one block's directory state. Fields are exported because the
// protocol engine and the DSI policies both manipulate them; Entry has no
// behaviour of its own beyond small helpers.
type Entry struct {
	State   State
	Sharers NodeSet // valid when State.IsShared()
	Owner   int     // valid when State == Exclusive

	// LastOwner remembers which node most recently held the block
	// exclusive, for the Idle_X "a different processor had the block
	// exclusive" test. -1 when no writer yet.
	LastOwner int

	// Version-number scheme storage.
	Ver     uint8 // 4-bit version, incremented on every exclusive grant
	ReadCnt uint8 // 2-bit shift register of shared grants this version

	// Migratory-detection state (the Cox/Fowler-style adaptive baseline,
	// optional): Migratory marks blocks in migratory mode, where read
	// requests are granted exclusive; ReadersSinceWrite counts shared
	// grants since the last exclusive grant (two readers demote the block).
	Migratory         bool
	ReadersSinceWrite int

	// Tear-off support: set while more than one tear-off copy may be
	// outstanding (paper §4.1: one extra bit per entry).
	MultiTearOff bool
	// TearOffOut tracks whether any tear-off copy may be outstanding since
	// the last exclusive grant (implied by the single-copy case of the
	// paper's bit; kept separately for clarity).
	TearOffOut bool
}

// BumpVersion increments the 4-bit version (wrapping) and clears the
// shared-copy shift register, as the paper specifies on every exclusive
// request.
func (e *Entry) BumpVersion() {
	e.Ver = (e.Ver + 1) & VerMask
	e.ReadCnt = 0
}

// NoteSharedGrant shifts a one into the 2-bit read counter.
func (e *Entry) NoteSharedGrant() {
	e.ReadCnt = ((e.ReadCnt << 1) | 1) & 0x3
}

// ReadByTwo reports whether the current version has been read at least
// twice (both counter bits set).
func (e *Entry) ReadByTwo() bool { return e.ReadCnt == 0x3 }

// NoteTearOffGrant records that a tear-off copy went out.
func (e *Entry) NoteTearOffGrant() {
	if e.TearOffOut {
		e.MultiTearOff = true
	}
	e.TearOffOut = true
}

// ClearTearOff resets tear-off tracking (on exclusive grant, when all
// outstanding tear-off copies are guaranteed dead by the consistency model's
// next sync points — see proto for when this is safe to call).
func (e *Entry) ClearTearOff() {
	e.TearOffOut = false
	e.MultiTearOff = false
}

// Dir is the directory of one home node: entries for the blocks homed
// there, created on demand in state Idle. Entries live in a dense
// block-indexed table (internal/blockmap), so the per-request lookup on the
// protocol hot path is a slice load rather than a hash probe, and entry
// pointers are stable for the directory's lifetime.
type Dir struct {
	node    int
	entries blockmap.Map[Entry]
}

// New creates the directory for home node.
func New(node int) *Dir {
	return &Dir{node: node}
}

// Node returns the home node this directory belongs to.
func (d *Dir) Node() int { return d.node }

// Entry returns the entry for a's block, creating an Idle entry on first
// touch.
//
//dsi:hotpath
func (d *Dir) Entry(a mem.Addr) *Entry {
	idx := mem.BlockIndex(a)
	if e := d.entries.Get(idx); e != nil {
		return e
	}
	e := d.entries.Ensure(idx)
	e.LastOwner = -1
	return e
}

// Peek returns the entry if it exists, without creating one.
//
//dsi:hotpath
func (d *Dir) Peek(a mem.Addr) (*Entry, bool) {
	e := d.entries.Get(mem.BlockIndex(a))
	return e, e != nil
}

// Len returns the number of materialized entries.
func (d *Dir) Len() int { return d.entries.Len() }

// ForEach calls fn for every materialized entry in first-touch order, which
// is deterministic (it follows the simulation's own event order).
func (d *Dir) ForEach(fn func(block mem.Addr, e *Entry)) {
	d.entries.ForEach(func(idx uint64, e *Entry) {
		fn(mem.Addr(idx)<<mem.BlockShift, e)
	})
}

// Reset drops all entries while keeping the block table's allocations, so a
// reused machine starts from an all-Idle directory without reallocating.
func (d *Dir) Reset() { d.entries.Reset() }
