package directory

import (
	"testing"
	"testing/quick"

	"dsisim/internal/mem"
)

func TestNodeSetBasics(t *testing.T) {
	var s NodeSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set not empty")
	}
	s = s.Add(3).Add(17).Add(3)
	if s.Count() != 2 || !s.Has(3) || !s.Has(17) || s.Has(4) {
		t.Fatalf("set = %v", s)
	}
	s = s.Remove(3)
	if s.Has(3) || !s.Only(17) {
		t.Fatalf("after remove: %v", s)
	}
	if s.String() != "{17}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestNodeSetForEachAscending(t *testing.T) {
	s := NodeSet(0).Add(31).Add(0).Add(5)
	var got []int
	s.ForEach(func(n int) { got = append(got, n) })
	want := []int{0, 5, 31}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestNodeSetAddRemoveProperty(t *testing.T) {
	f := func(init uint64, node uint8) bool {
		n := int(node % 64)
		s := NodeSet(init)
		return s.Add(n).Has(n) && !s.Remove(n).Has(n) &&
			s.Add(n).Remove(n) == s.Remove(n) &&
			s.Add(n).Add(n) == s.Add(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateClassification(t *testing.T) {
	idle := []State{Idle, IdleX, IdleS, IdleSI}
	for _, s := range idle {
		if !s.IsIdle() || s.IsShared() {
			t.Errorf("%v misclassified", s)
		}
	}
	for _, s := range []State{Shared, SharedSI} {
		if !s.IsShared() || s.IsIdle() {
			t.Errorf("%v misclassified", s)
		}
	}
	if Exclusive.IsIdle() || Exclusive.IsShared() {
		t.Error("Exclusive misclassified")
	}
	for s := Idle; s <= IdleSI; s++ {
		if s.String() == "" {
			t.Errorf("state %d unnamed", int(s))
		}
	}
}

func TestVersionWrapsAt4Bits(t *testing.T) {
	var e Entry
	for i := 0; i < 15; i++ {
		e.BumpVersion()
	}
	if e.Ver != 15 {
		t.Fatalf("ver = %d, want 15", e.Ver)
	}
	e.BumpVersion()
	if e.Ver != 0 {
		t.Fatalf("ver after wrap = %d, want 0", e.Ver)
	}
}

func TestBumpClearsReadCounter(t *testing.T) {
	var e Entry
	e.NoteSharedGrant()
	e.NoteSharedGrant()
	if !e.ReadByTwo() {
		t.Fatal("two grants should set both bits")
	}
	e.BumpVersion()
	if e.ReadCnt != 0 || e.ReadByTwo() {
		t.Fatal("bump did not clear read counter")
	}
}

func TestReadByTwoNeedsTwoGrants(t *testing.T) {
	var e Entry
	if e.ReadByTwo() {
		t.Fatal("fresh entry ReadByTwo")
	}
	e.NoteSharedGrant()
	if e.ReadByTwo() {
		t.Fatal("one grant sufficed")
	}
	e.NoteSharedGrant()
	if !e.ReadByTwo() {
		t.Fatal("two grants did not suffice")
	}
	// Saturates rather than overflowing.
	e.NoteSharedGrant()
	if !e.ReadByTwo() || e.ReadCnt > 3 {
		t.Fatalf("counter escaped 2 bits: %d", e.ReadCnt)
	}
}

func TestTearOffBit(t *testing.T) {
	var e Entry
	e.NoteTearOffGrant()
	if e.MultiTearOff {
		t.Fatal("one grant set MultiTearOff")
	}
	e.NoteTearOffGrant()
	if !e.MultiTearOff {
		t.Fatal("second grant did not set MultiTearOff")
	}
	e.ClearTearOff()
	if e.TearOffOut || e.MultiTearOff {
		t.Fatal("clear did not reset")
	}
}

func TestDirEntryOnDemand(t *testing.T) {
	d := New(2)
	if d.Node() != 2 {
		t.Fatalf("node = %d", d.Node())
	}
	if _, ok := d.Peek(64); ok {
		t.Fatal("Peek materialized an entry")
	}
	e := d.Entry(65) // same block as 64
	if e.State != Idle || e.LastOwner != -1 {
		t.Fatalf("fresh entry = %+v", e)
	}
	if e2 := d.Entry(64); e2 != e {
		t.Fatal("same block produced distinct entries")
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
	n := 0
	d.ForEach(func(a mem.Addr, _ *Entry) {
		if a != 64 {
			t.Errorf("entry at %d", a)
		}
		n++
	})
	if n != 1 {
		t.Fatalf("ForEach visited %d", n)
	}
}

// Property: version numbers always stay within 4 bits and the read counter
// within 2 bits for any operation sequence.
func TestFieldWidthProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var e Entry
		for _, bump := range ops {
			if bump {
				e.BumpVersion()
			} else {
				e.NoteSharedGrant()
			}
			if e.Ver > VerMask || e.ReadCnt > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
